//! The shuffle service top level: fan the executors out over threads,
//! stitch their simulated clocks into one deterministic report.

use crate::exec::{run_mapper, GcTotals, MapOutcome, Message, SpillTotals};
use crate::reduce::{run_reducer, ReduceOutcome};
use crate::report::{fold_checksum, BackendReport, ShuffleReport};
use crate::timeline::compose;
use crate::ShuffleConfig;
use std::collections::BTreeMap;
use store::{par_map, Backend};

/// One backend's full run: the report plus the merged aggregate (kept
/// out of the report; tests check it against the dataset's expected
/// fold).
#[derive(Debug)]
pub struct BackendRun {
    /// The measurements.
    pub report: BackendReport,
    /// The merged key → `(count, sum)` aggregate over all reducers.
    pub fold: BTreeMap<u64, (u64, f64)>,
}

/// Runs one backend through the whole shuffle: map fan-out, reduce
/// fan-out, timeline composition.
///
/// # Panics
/// Panics if any executor fails (the workload registers every class) or
/// if two reducers claim the same key.
pub fn run_backend(cfg: &ShuffleConfig, backend: Backend) -> BackendRun {
    // Map stage: one self-contained executor per mapper, on real
    // threads. Results land in mapper order regardless of scheduling.
    let maps: Vec<MapOutcome> = par_map(cfg.jobs, cfg.mappers, |m| run_mapper(cfg, backend, m));

    // Global message list in (mapper, flush) order; per reducer this is
    // ascending (src, seq) — the deterministic delivery order.
    let all: Vec<&Message> = maps.iter().flat_map(|o| o.messages.iter()).collect();
    let mut per_reducer: Vec<Vec<usize>> = vec![Vec::new(); cfg.reducers];
    for (i, msg) in all.iter().enumerate() {
        per_reducer[msg.dst].push(i);
    }

    // Reduce stage: one executor per reducer, on real threads.
    let agg = cfg.agg();
    let reg = agg.registry();
    let capacity = agg.heap_capacity();
    let reduces: Vec<ReduceOutcome> = par_map(cfg.jobs, cfg.reducers, |r| {
        let msgs: Vec<&Message> = per_reducer[r].iter().map(|&i| all[i]).collect();
        run_reducer(backend, &reg, capacity, &msgs)
    });

    // Stitch per-message deserialization times back to the global list.
    let mut de_ns = vec![0.0f64; all.len()];
    for (r, outcome) in reduces.iter().enumerate() {
        for (k, &i) in per_reducer[r].iter().enumerate() {
            de_ns[i] = outcome.de_ns[k];
        }
    }

    // Timeline composition: sequential and order-deterministic.
    let net = compose(cfg, &all, &de_ns);

    // Merge the folds; key spaces are disjoint (key % reducers routing).
    let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    for outcome in &reduces {
        for (&k, &v) in &outcome.fold {
            assert!(fold.insert(k, v).is_none(), "key {k} folded by two reducers");
        }
    }

    let mut gc_totals = GcTotals::default();
    let mut spill_totals = SpillTotals::default();
    for o in &maps {
        gc_totals.merge(&o.gc);
        if let Some(s) = &o.spill {
            spill_totals.merge(s);
        }
    }
    let report = BackendReport {
        name: backend.name(),
        messages: all.len() as u64,
        wire_bytes: all.iter().map(|m| m.bytes.len() as u64).sum(),
        records: reduces.iter().map(|o| o.records).sum(),
        ser_busy_ns: maps.iter().map(|o| o.ser_busy_ns).sum(),
        map_makespan_ns: maps.iter().map(|o| o.clock_ns).fold(0.0, f64::max),
        de_busy_ns: reduces.iter().map(|o| o.de_busy_ns).sum(),
        net,
        gc: cfg.gc_pressure.then_some(gc_totals),
        spill: (cfg.spill_bytes > 0).then_some(spill_totals),
        fold_checksum: fold_checksum(&fold),
    };
    BackendRun { report, fold }
}

/// Runs a list of backends and checks they all computed the same
/// aggregate.
///
/// # Panics
/// Panics if two backends disagree on the fold — a round-trip
/// correctness failure.
pub fn run_suite(cfg: &ShuffleConfig, backends: &[Backend]) -> ShuffleReport {
    let mut reports = Vec::with_capacity(backends.len());
    let mut first_fold: Option<(&'static str, BTreeMap<u64, (u64, f64)>)> = None;
    for &b in backends {
        let run = run_backend(cfg, b);
        match &first_fold {
            None => first_fold = Some((b.name(), run.fold)),
            Some((name, fold)) => {
                assert!(
                    *fold == run.fold,
                    "{} and {} disagree on the aggregate",
                    name,
                    b.name()
                );
            }
        }
        reports.push(run.report);
    }
    ShuffleReport {
        config: *cfg,
        backends: reports,
    }
}
