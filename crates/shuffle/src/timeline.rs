//! Timeline composition: every batch's journey from serialization
//! completion through the fabric to deserialization completion, with
//! bounded-window backpressure at each reducer.
//!
//! The composition is pure arithmetic over the per-request simulated
//! times the executors measured — it runs sequentially, in a total order
//! independent of which thread executed which executor, so the result is
//! deterministic for any job count.

use crate::exec::Message;
use crate::faults::{Attempt, FaultTotals, MsgPlan};
use crate::ShuffleConfig;
use sim::net::Fabric;
use std::collections::VecDeque;
use store::Engine;
use telemetry::ids::{MAPPER_PID_BASE, REDUCER_PID_BASE, T_MAIN, T_NIC, T_SEND};
use telemetry::{EntityId, FlowEvent, Instant, NoopSink, Sink, Span};

/// Network-and-makespan statistics of one shuffle.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetStats {
    /// End-to-end completion time: the last batch's deserialization.
    pub makespan_ns: f64,
    /// Summed per-message time on the fabric (injection to last-byte
    /// arrival, including NIC queueing).
    pub net_ns: f64,
    /// Sends that found the destination window full.
    pub backpressure_blocks: u64,
    /// Total time senders spent blocked on the watermark.
    pub backpressure_wait_ns: f64,
    /// Aggregate ingress-bandwidth utilization over the makespan.
    pub ingress_utilization: f64,
}

/// Composes the shuffle timeline.
///
/// `msgs` is the global message list; `order` must iterate it in a
/// deterministic total order of send attempts — ascending
/// `(ser_done_ns, src, dst, seq)`. `de_ns[i]` is message `i`'s
/// deserialization busy time.
///
/// Rules, in order, for each message:
/// 1. a mapper issues sends serially (a send cannot start before the
///    mapper's previous send started);
/// 2. **backpressure**: while the destination reducer's in-flight bytes
///    plus this message would exceed the watermark, the sender blocks
///    until the earliest in-flight batch finishes deserializing;
/// 3. the message crosses the [`Fabric`] (egress NIC → pair link →
///    ingress NIC, each a contended ledger);
/// 4. the reducer deserializes arrivals serially.
///
/// `plans` aligns with `msgs` (empty = fault-free). Failed attempts
/// replay rule 3 per retransmission, all charged to the clock:
/// a **lost** transfer still occupies the fabric, the sender declares
/// it dead after the loss timeout, then backs off exponentially before
/// resending; a **corrupt** transfer arrives, costs the receiver the
/// CRC scan to detect, a NACK crosses back (one link latency), and the
/// sender backs off. `faults` accumulates the retry counters and the
/// recovery time (every nanosecond between a failed attempt's start and
/// its retry's start).
pub fn compose(
    cfg: &ShuffleConfig,
    msgs: &[&Message],
    de_ns: &[f64],
    plans: &[MsgPlan],
    faults: &mut FaultTotals,
) -> NetStats {
    compose_sunk(cfg, msgs, de_ns, plans, faults, &mut NoopSink)
}

/// [`compose`] with a telemetry sink: the composed timeline is emitted
/// as spans — `backpressure.wait`, `wire.lost`/`wire.corrupt` attempt
/// windows (backoff included) and the final `wire` transit on each
/// sender's send lane, `nack` instants on the receiver's NIC lane,
/// `deserialize` spans on each reducer's main lane, and the fabric's
/// per-hop busy windows as `nic.egress`/`nic.ingress` spans. Net and
/// fault counters (`shuffle.backpressure_blocks`, `shuffle.retries`,
/// `shuffle.lost_messages`, `shuffle.wire_corruptions`,
/// `shuffle.fabric_bytes`) are booked at the event sites. The returned
/// stats are identical to the untraced path for any sink.
pub fn compose_sunk<S: Sink>(
    cfg: &ShuffleConfig,
    msgs: &[&Message],
    de_ns: &[f64],
    plans: &[MsgPlan],
    faults: &mut FaultTotals,
    sink: &mut S,
) -> NetStats {
    assert_eq!(msgs.len(), de_ns.len());
    let mut order: Vec<usize> = (0..msgs.len()).collect();
    order.sort_by(|&a, &b| {
        let (ma, mb) = (msgs[a], msgs[b]);
        ma.ser_done_ns
            .partial_cmp(&mb.ser_done_ns)
            .expect("simulated times are never NaN")
            .then(ma.src.cmp(&mb.src))
            .then(ma.dst.cmp(&mb.dst))
            .then(ma.seq.cmp(&mb.seq))
    });

    let mut fabric = Fabric::full_mesh(cfg.mappers, cfg.reducers, cfg.link);
    if S::ENABLED {
        fabric.record_tape();
    }
    let mut mapper_free = vec![0.0f64; cfg.mappers];
    let mut reducer_free = vec![0.0f64; cfg.reducers];
    // Per reducer: (de_done, bytes) of batches sent but not yet
    // deserialized. De-completion is monotonic per reducer (the reduce
    // server is serial), so the front is always the earliest.
    let mut inflight: Vec<VecDeque<(f64, u64)>> = vec![VecDeque::new(); cfg.reducers];
    let mut inflight_bytes = vec![0u64; cfg.reducers];
    let mut stats = NetStats::default();
    let mut flow_seq = 0u64;

    for i in order {
        let msg = msgs[i];
        let (src, dst) = (msg.src, msg.dst);
        let send_lane = EntityId { pid: MAPPER_PID_BASE + src as u32, tid: T_SEND };
        let wire = (msg.bytes.len() as u64).max(1);
        let mut start = msg.ser_done_ns.max(mapper_free[src]);

        // Retire batches the reducer has already finished by `start`.
        while let Some(&(done, b)) = inflight[dst].front() {
            if done <= start {
                inflight[dst].pop_front();
                inflight_bytes[dst] -= b;
            } else {
                break;
            }
        }
        // Block on the watermark: wait for the earliest in-flight batch
        // to clear, repeatedly, until the window has room.
        let block_start = start;
        while inflight_bytes[dst] + wire > cfg.watermark_bytes && !inflight[dst].is_empty() {
            let (done, b) = inflight[dst].pop_front().expect("non-empty");
            inflight_bytes[dst] -= b;
            stats.backpressure_blocks += 1;
            stats.backpressure_wait_ns += done - start;
            if S::ENABLED {
                sink.count("shuffle.backpressure_blocks", 1);
            }
            start = done;
        }
        if S::ENABLED && start > block_start {
            sink.span(Span {
                entity: send_lane,
                name: "backpressure.wait",
                t0_ns: block_start,
                t1_ns: start,
                attrs: vec![("dst", (dst as u64).into())],
            });
        }

        mapper_free[src] = start;
        // Failed attempts first: each occupies the fabric and delays the
        // message by detection (timeout or CRC+NACK) plus backoff.
        let mut attempt_start = start;
        if let Some(plan) = plans.get(i) {
            if plan.retries() > 0 {
                let fc = &cfg.faults.expect("fault plans imply a fault spec").cfg;
                for (k, a) in plan.attempts.iter().enumerate() {
                    let backoff = fc.backoff_ns * f64::from(1u32 << (k as u32).min(16));
                    let resume = match a {
                        Attempt::Clean => break,
                        Attempt::Lost => {
                            let lost_arrival = fabric.send(src, dst, wire, attempt_start);
                            stats.net_ns += lost_arrival - attempt_start;
                            faults.lost_messages += 1;
                            if S::ENABLED {
                                sink.count("shuffle.lost_messages", 1);
                            }
                            // The sender times out from the attempt's
                            // start; the fabric stays busy either way.
                            (attempt_start + fc.timeout_ns).max(lost_arrival) + backoff
                        }
                        Attempt::Corrupt { .. } => {
                            let arrival = fabric.send(src, dst, wire, attempt_start);
                            stats.net_ns += arrival - attempt_start;
                            faults.wire_corruptions += 1;
                            if S::ENABLED {
                                sink.count("shuffle.wire_corruptions", 1);
                                // The receiver detects the damage at the
                                // end of its CRC scan and NACKs.
                                sink.instant(Instant {
                                    entity: EntityId {
                                        pid: REDUCER_PID_BASE + dst as u32,
                                        tid: T_NIC,
                                    },
                                    name: "nack",
                                    t_ns: arrival + Engine::verify_ns(wire as usize),
                                    attrs: vec![("src", (src as u64).into())],
                                });
                            }
                            // Receiver pays the CRC scan to detect, the
                            // NACK crosses one link latency back.
                            arrival + Engine::verify_ns(wire as usize) + cfg.link.latency_ns + backoff
                        }
                    };
                    faults.retries += 1;
                    faults.fabric_bytes += wire;
                    faults.recovery_ns += resume - attempt_start;
                    if S::ENABLED {
                        sink.count("shuffle.retries", 1);
                        sink.count("shuffle.fabric_bytes", wire);
                        sink.span(Span {
                            entity: send_lane,
                            name: match a {
                                Attempt::Lost => "wire.lost",
                                _ => "wire.corrupt",
                            },
                            t0_ns: attempt_start,
                            t1_ns: resume,
                            attrs: vec![
                                ("dst", (dst as u64).into()),
                                ("bytes", wire.into()),
                                ("backoff_ns", backoff.into()),
                            ],
                        });
                    }
                    attempt_start = resume;
                }
            }
        }
        let arrival = fabric.send(src, dst, wire, attempt_start);
        stats.net_ns += arrival - attempt_start;
        faults.fabric_bytes += wire;
        let de_start = arrival.max(reducer_free[dst]);
        let de_done = de_start + de_ns[i];
        reducer_free[dst] = de_done;
        if S::ENABLED {
            sink.count("shuffle.fabric_bytes", wire);
            sink.span(Span {
                entity: send_lane,
                name: "wire",
                t0_ns: attempt_start,
                t1_ns: arrival,
                attrs: vec![("dst", (dst as u64).into()), ("bytes", wire.into())],
            });
            sink.span(Span {
                entity: EntityId { pid: REDUCER_PID_BASE + dst as u32, tid: T_MAIN },
                name: "deserialize",
                t0_ns: de_start,
                t1_ns: de_done,
                attrs: vec![
                    ("src", (src as u64).into()),
                    ("seq", msg.seq.into()),
                    ("bytes", wire.into()),
                ],
            });
            // Causal edge: this batch's wire departure feeds the
            // reducer's deserialize start.
            sink.flow(FlowEvent {
                id: flow_seq,
                name: "flow.fetch",
                src: send_lane,
                t0_ns: attempt_start,
                dst: EntityId { pid: REDUCER_PID_BASE + dst as u32, tid: T_MAIN },
                t1_ns: de_start,
            });
            flow_seq += 1;
        }
        inflight[dst].push_back((de_done, wire));
        inflight_bytes[dst] += wire;
        stats.makespan_ns = stats.makespan_ns.max(de_done);
    }
    if S::ENABLED {
        // The fabric's per-hop busy windows become the NIC lanes.
        for w in fabric.take_tape() {
            if w.egress_done_ns > w.start_ns {
                sink.span(Span {
                    entity: EntityId { pid: MAPPER_PID_BASE + w.src as u32, tid: T_NIC },
                    name: "nic.egress",
                    t0_ns: w.start_ns,
                    t1_ns: w.egress_done_ns,
                    attrs: vec![("dst", (w.dst as u64).into()), ("bytes", w.bytes.into())],
                });
            }
            if w.arrival_ns > w.wire_done_ns {
                sink.span(Span {
                    entity: EntityId { pid: REDUCER_PID_BASE + w.dst as u32, tid: T_NIC },
                    name: "nic.ingress",
                    t0_ns: w.wire_done_ns,
                    t1_ns: w.arrival_ns,
                    attrs: vec![("src", (w.src as u64).into()), ("bytes", w.bytes.into())],
                });
            }
        }
    }
    stats.ingress_utilization = fabric.ingress_utilization(stats.makespan_ns);
    stats
}
