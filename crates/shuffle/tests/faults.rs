//! Fault-injection tests: every fault class is detected, recovered on
//! the simulated clock, and leaves the aggregate exactly equal to the
//! fault-free fold. Also pins the invariants the CI relies on: faulted
//! reports are byte-identical across job counts, and zero-rate
//! injection reproduces the fault-free numbers.

use shuffle::{run_backend, run_suite, Backend, FaultSpec, ShuffleConfig, ShuffleError};
use sim::FaultConfig;
use std::collections::BTreeMap;

fn tiny() -> ShuffleConfig {
    ShuffleConfig {
        mappers: 3,
        reducers: 3,
        records_per_mapper: 96,
        distinct_keys: 16,
        ..ShuffleConfig::smoke()
    }
}

/// A spec with every rate zeroed; tests switch on just the class under
/// test so recovery effects are attributable.
fn quiet_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        cfg: FaultConfig { seed, ..FaultConfig::none() },
        fallback: Backend::Kryo,
    }
}

fn assert_fold_exact(fold: &BTreeMap<u64, (u64, f64)>, cfg: &ShuffleConfig) {
    let expected = cfg.agg().expected_fold();
    assert_eq!(fold.len(), expected.len(), "fold key count");
    for (k, &(count, sum)) in &expected {
        let &(c, s) = fold.get(k).expect("key present");
        assert_eq!(c, count, "count for key {k}");
        assert_eq!(s.to_bits(), sum.to_bits(), "sum for key {k} is bit-exact");
    }
}

#[test]
fn wire_loss_and_corruption_are_retried_and_the_fold_survives() {
    let clean = run_backend(&tiny(), Backend::Kryo).unwrap();

    let mut cfg = tiny();
    cfg.checksum = true;
    let mut spec = quiet_spec(0xFA17_0001);
    spec.cfg.link_loss = 0.4;
    spec.cfg.wire_corruption = 0.4;
    cfg.faults = Some(spec);

    let run = run_backend(&cfg, Backend::Kryo).unwrap();
    let f = run.report.faults.expect("fault counters rendered");
    assert!(f.lost_messages > 0, "loss rate 0.4 must lose transfers");
    assert!(f.wire_corruptions > 0, "corruption rate 0.4 must corrupt transfers");
    assert_eq!(
        f.retries,
        f.lost_messages + f.wire_corruptions,
        "every failed attempt is exactly one retry"
    );
    assert_eq!(
        f.checksum_errors, f.wire_corruptions,
        "every planned corruption is caught by the CRC frame"
    );
    assert!(f.recovery_ns > 0.0, "timeouts and backoff cost simulated time");
    assert!(
        f.fabric_bytes > run.report.wire_bytes,
        "retransmissions put extra bytes on the fabric"
    );
    let goodput = f.goodput(run.report.wire_bytes);
    assert!(goodput > 0.0 && goodput < 1.0, "goodput {goodput} must degrade");
    assert!(
        run.report.net.makespan_ns > clean.report.net.makespan_ns,
        "recovery must inflate the makespan"
    );
    // Recovery is exact: the aggregate matches the fault-free run and
    // the dataset's independently computed fold.
    assert_eq!(run.fold, clean.fold);
    assert_fold_exact(&run.fold, &cfg);
}

#[test]
fn wire_corruption_without_checksum_is_a_typed_error() {
    let mut cfg = tiny();
    let mut spec = quiet_spec(1);
    spec.cfg.wire_corruption = 0.1;
    cfg.faults = Some(spec);
    assert_eq!(
        run_backend(&cfg, Backend::Kryo).unwrap_err(),
        ShuffleError::ChecksumRequired
    );
}

#[test]
fn mapper_death_reexecutes_and_preserves_the_fold() {
    let clean = run_backend(&tiny(), Backend::Kryo).unwrap();

    let mut cfg = tiny();
    let mut spec = quiet_spec(0xFA17_0002);
    spec.cfg.mapper_death = 1.0; // every mapper dies once
    cfg.faults = Some(spec);

    let run = run_backend(&cfg, Backend::Kryo).unwrap();
    let f = run.report.faults.expect("fault counters rendered");
    assert_eq!(f.mapper_deaths, 3, "rate 1.0 kills each mapper's first attempt");
    assert!(f.reexec_ns > 0.0);
    assert!(
        run.report.map_makespan_ns > clean.report.map_makespan_ns,
        "re-execution inflates the map stage"
    );
    assert_eq!(run.fold, clean.fold, "re-executed mappers reproduce their batches");
    assert_eq!(run.report.wire_bytes, clean.report.wire_bytes);
}

#[test]
fn accelerator_faults_degrade_to_the_software_fallback() {
    let clean = run_backend(&tiny(), Backend::Cereal).unwrap();

    let mut cfg = tiny();
    let mut spec = quiet_spec(0xFA17_0003);
    spec.cfg.accel_fault = 1.0; // every accelerator request faults
    cfg.faults = Some(spec);

    let run = run_backend(&cfg, Backend::Cereal).unwrap();
    let f = run.report.faults.expect("fault counters rendered");
    assert_eq!(
        f.accel_faults, run.report.messages,
        "rate 1.0 faults every accelerator flush"
    );
    assert!(f.fallback_ns > 0.0, "fallback serialization is charged");
    assert_eq!(run.fold, clean.fold, "degraded partitions still fold exactly");

    // Software backends never touch the accelerator: same spec, no
    // accelerator faults drawn.
    let sw = run_backend(&cfg, Backend::Kryo).unwrap();
    assert_eq!(sw.report.faults.unwrap().accel_faults, 0);
}

#[test]
fn spill_read_errors_are_retried_on_the_mapper_clock() {
    let mut base = tiny();
    base.spill_bytes = 1; // spill every sealed batch
    let clean = run_backend(&base, Backend::Kryo).unwrap();

    let mut cfg = base;
    let mut spec = quiet_spec(0xFA17_0004);
    spec.cfg.disk_read_error = 0.4;
    cfg.faults = Some(spec);

    let run = run_backend(&cfg, Backend::Kryo).unwrap();
    let f = run.report.faults.expect("fault counters rendered");
    assert!(f.spill_retries > 0, "read-error rate 0.4 must trip retries");
    assert!(f.recovery_ns > 0.0, "retries and backoff cost simulated time");
    assert!(
        run.report.map_makespan_ns > clean.report.map_makespan_ns,
        "failed reads inflate the map stage"
    );
    assert_eq!(run.fold, clean.fold);
    // The spill ledger's counters are unchanged — the retry time is
    // accounted separately as recovery — but failed attempts occupy the
    // device, so clean fetches can queue behind them.
    let (s, cs) = (run.report.spill.unwrap(), clean.report.spill.unwrap());
    assert_eq!(s.spills, cs.spills);
    assert_eq!(s.spilled_bytes, cs.spilled_bytes);
    assert_eq!(s.spill_ns, cs.spill_ns);
    assert_eq!(s.fetches, cs.fetches);
    assert!(s.fetch_ns >= cs.fetch_ns, "failed reads only delay clean fetches");
}

#[test]
fn faulted_report_is_byte_identical_for_any_job_count() {
    let mut cfg = tiny();
    cfg.checksum = true;
    cfg.faults = Some(FaultSpec::uniform(0.2, 0xFA17_0005));
    cfg.spill_bytes = 1;

    let backends = [Backend::Kryo, Backend::Cereal];
    cfg.jobs = 1;
    let one = run_suite(&cfg, &backends).unwrap().to_json();
    cfg.jobs = 4;
    let four = run_suite(&cfg, &backends).unwrap().to_json();
    assert_eq!(one, four, "fault schedule must not depend on thread count");
}

#[test]
fn every_backend_recovers_the_exact_fold_under_uniform_faults() {
    let mut cfg = tiny();
    cfg.checksum = true;
    cfg.faults = Some(FaultSpec::uniform(0.25, 0xFA17_0006));
    // run_suite cross-checks the folds; also pin them to the dataset.
    let report = run_suite(&cfg, Backend::all()).unwrap();
    for b in &report.backends {
        assert_eq!(b.records, (3 * 96) as u64, "{} lost records", b.name);
    }
    let run = run_backend(&cfg, Backend::Java).unwrap();
    assert_fold_exact(&run.fold, &cfg);
}

#[test]
fn zero_rate_injection_reproduces_the_fault_free_numbers() {
    let clean = run_backend(&tiny(), Backend::Kryo).unwrap();

    let mut cfg = tiny();
    cfg.faults = Some(quiet_spec(99));
    let run = run_backend(&cfg, Backend::Kryo).unwrap();

    let f = run.report.faults.expect("counters render, all zero");
    assert_eq!(f.retries, 0);
    assert_eq!(f.mapper_deaths, 0);
    assert_eq!(f.accel_faults, 0);
    assert_eq!(f.spill_retries, 0);
    assert_eq!(f.recovery_ns, 0.0);
    assert_eq!(f.fabric_bytes, run.report.wire_bytes);

    assert_eq!(run.report.wire_bytes, clean.report.wire_bytes);
    assert_eq!(run.report.messages, clean.report.messages);
    assert_eq!(run.report.ser_busy_ns, clean.report.ser_busy_ns);
    assert_eq!(run.report.net, clean.report.net);
    assert_eq!(run.fold, clean.fold);
}
