//! End-to-end shuffle service tests: thread-count determinism,
//! backpressure, coalescing, GC pressure, spilling, key skew, and
//! cross-backend agreement.

use shuffle::{run_backend, run_suite, Backend, ShuffleConfig};
use workloads::KeySkew;

fn tiny() -> ShuffleConfig {
    ShuffleConfig {
        mappers: 3,
        reducers: 3,
        records_per_mapper: 96,
        distinct_keys: 16,
        ..ShuffleConfig::smoke()
    }
}

#[test]
fn report_is_byte_identical_for_any_job_count() {
    let backends = [Backend::Kryo, Backend::Cereal];
    let mut cfg = tiny();
    cfg.jobs = 1;
    let one = run_suite(&cfg, &backends).unwrap().to_json();
    cfg.jobs = 4;
    let four = run_suite(&cfg, &backends).unwrap().to_json();
    assert_eq!(one, four, "jobs=1 and jobs=4 must render identical reports");
    cfg.jobs = 13;
    let thirteen = run_suite(&cfg, &backends).unwrap().to_json();
    assert_eq!(one, thirteen);
}

#[test]
fn fold_matches_the_datasets_expected_aggregate() {
    let cfg = tiny();
    let run = run_backend(&cfg, Backend::Kryo).unwrap();
    let expected = cfg.agg().expected_fold();
    assert_eq!(run.fold.len(), expected.len());
    for (k, &(count, sum)) in &expected {
        let &(c, s) = run.fold.get(k).expect("key present");
        assert_eq!(c, count, "count for key {k}");
        assert_eq!(s.to_bits(), sum.to_bits(), "sum for key {k} is bit-exact");
    }
}

#[test]
fn all_backends_agree_on_the_aggregate() {
    // run_suite errors on disagreement; also check the checksums match.
    let report = run_suite(&tiny(), Backend::all()).unwrap();
    let first = report.backends[0].fold_checksum;
    for b in &report.backends {
        assert_eq!(b.fold_checksum, first, "{} diverged", b.name);
        assert_eq!(b.records, (3 * 96) as u64, "{} lost records", b.name);
    }
}

#[test]
fn backpressure_blocks_at_the_watermark() {
    // A watermark of 1 byte forces every send to wait for the previous
    // batch to clear the reducer.
    let mut tight = tiny();
    tight.watermark_bytes = 1;
    let blocked = run_backend(&tight, Backend::Kryo).unwrap();
    assert!(
        blocked.report.net.backpressure_blocks > 0,
        "tight watermark must block senders"
    );
    assert!(blocked.report.net.backpressure_wait_ns > 0.0);

    // An effectively unbounded window never blocks, and the shuffle
    // finishes no later.
    let mut open = tiny();
    open.watermark_bytes = u64::MAX;
    let free = run_backend(&open, Backend::Kryo).unwrap();
    assert_eq!(free.report.net.backpressure_blocks, 0);
    assert_eq!(free.report.net.backpressure_wait_ns, 0.0);
    assert!(
        blocked.report.net.makespan_ns >= free.report.net.makespan_ns,
        "blocking cannot finish earlier: {} vs {}",
        blocked.report.net.makespan_ns,
        free.report.net.makespan_ns
    );
    // The stream contents are unaffected by flow control.
    assert_eq!(blocked.report.fold_checksum, free.report.fold_checksum);
    assert_eq!(blocked.report.wire_bytes, free.report.wire_bytes);
}

#[test]
fn coalescing_ships_fewer_larger_messages_with_identical_records() {
    let mut fine = tiny();
    fine.flush_bytes = 1; // flush every record: no coalescing
    let mut coarse = tiny();
    coarse.flush_bytes = 64 << 10; // everything coalesces per reducer

    let fine_run = run_backend(&fine, Backend::Kryo).unwrap();
    let coarse_run = run_backend(&coarse, Backend::Kryo).unwrap();
    assert!(
        coarse_run.report.messages < fine_run.report.messages,
        "coalescing must reduce message count: {} vs {}",
        coarse_run.report.messages,
        fine_run.report.messages
    );
    let fine_avg = fine_run.report.wire_bytes as f64 / fine_run.report.messages as f64;
    let coarse_avg = coarse_run.report.wire_bytes as f64 / coarse_run.report.messages as f64;
    assert!(
        coarse_avg > fine_avg * 4.0,
        "coalesced batches must be much larger: {coarse_avg:.0} vs {fine_avg:.0} B"
    );
    // Identical decoded records either way.
    assert_eq!(fine_run.fold, coarse_run.fold);
    assert_eq!(
        fine_run.report.records, coarse_run.report.records,
        "every record arrives exactly once"
    );
    // Fewer messages means less per-message framing on the wire.
    assert!(coarse_run.report.wire_bytes < fine_run.report.wire_bytes);
}

#[test]
fn gc_pressure_reports_collections_and_charges_pauses() {
    let mut cfg = tiny();
    cfg.gc_pressure = true;
    cfg.gc_waves = 4;
    let run = run_backend(&cfg, Backend::Kryo).unwrap();
    let gc = run.report.gc.expect("gc totals present in gc-pressure mode");
    assert_eq!(gc.collections, (cfg.gc_waves as u64 - 1) * cfg.mappers as u64);
    assert!(gc.pause_ns > 0.0);
    assert!(
        gc.reclaimed_bytes > 0,
        "shipped batches must be reclaimed as garbage"
    );
    // The aggregate survives relocation.
    let expected = cfg.agg().expected_fold();
    assert_eq!(run.fold.len(), expected.len());
    for (k, &(count, _)) in &expected {
        assert_eq!(run.fold[k].0, count);
    }
    // Pauses push the map stage (and the whole shuffle) later.
    let mut no_gc = cfg;
    no_gc.gc_pressure = false;
    let baseline = run_backend(&no_gc, Backend::Kryo).unwrap();
    assert!(run.report.map_makespan_ns > baseline.report.map_makespan_ns);
    assert_eq!(run.report.fold_checksum, baseline.report.fold_checksum);
}

#[test]
fn spill_threshold_routes_batches_through_the_store() {
    // A one-byte budget forces every flushed batch out to the simulated
    // SSD and back in at serve time.
    let mut spilling = tiny();
    spilling.spill_bytes = 1;
    let spilled = run_backend(&spilling, Backend::Kryo).unwrap();
    let totals = spilled.report.spill.expect("spill totals present when spilling is on");
    assert_eq!(totals.spills, spilled.report.messages, "every batch spilled");
    assert_eq!(totals.fetches, spilled.report.messages, "every batch read back");
    assert!(totals.spilled_bytes >= spilled.report.wire_bytes);
    assert!(totals.spill_ns > 0.0 && totals.fetch_ns > 0.0);

    // The store is a detour, not a transformation: identical bytes on
    // the wire, identical aggregate, and a later map stage.
    let baseline = run_backend(&tiny(), Backend::Kryo).unwrap();
    assert!(baseline.report.spill.is_none());
    assert_eq!(spilled.report.wire_bytes, baseline.report.wire_bytes);
    assert_eq!(spilled.report.fold_checksum, baseline.report.fold_checksum);
    assert!(spilled.report.map_makespan_ns > baseline.report.map_makespan_ns);

    // A budget above the mapper's whole output never touches the disk.
    let mut roomy = tiny();
    roomy.spill_bytes = u64::MAX;
    let held = run_backend(&roomy, Backend::Kryo).unwrap();
    let totals = held.report.spill.expect("store engaged");
    assert_eq!(totals.spills, 0);
    assert_eq!(totals.spill_ns, 0.0);
    assert_eq!(held.report.fold_checksum, baseline.report.fold_checksum);

    // Spilling composes with thread fan-out deterministically.
    let mut jobs4 = spilling;
    jobs4.jobs = 4;
    let report_one = run_suite(&spilling, &[Backend::Kryo]).unwrap().to_json();
    let report_four = run_suite(&jobs4, &[Backend::Kryo]).unwrap().to_json();
    assert_eq!(report_one, report_four);
}

#[test]
fn zipf_skew_engages_backpressure_on_the_hot_reducer() {
    // Skewed keys concentrate traffic on few reducers; with a watermark
    // sized so uniform traffic just clears, the hot reducer's queue
    // must block its senders.
    let mut uniform = tiny();
    uniform.records_per_mapper = 256;
    uniform.watermark_bytes = 6 << 10;
    let mut skewed = uniform;
    skewed.skew = KeySkew::Zipf(1.4);

    let u = run_backend(&uniform, Backend::Kryo).unwrap();
    let z = run_backend(&skewed, Backend::Kryo).unwrap();
    assert!(
        z.report.net.backpressure_blocks > u.report.net.backpressure_blocks,
        "skew must increase watermark blocking: {} vs {}",
        z.report.net.backpressure_blocks,
        u.report.net.backpressure_blocks
    );
    assert!(z.report.net.backpressure_blocks > 0);
    assert!(z.report.net.backpressure_wait_ns > 0.0);
    // Skew shifts traffic, not records: all arrive, on fewer keys.
    assert_eq!(z.report.records, u.report.records);
    assert!(z.fold.len() <= u.fold.len());
    // And the skewed dataset still folds to its own expected aggregate.
    let expected = skewed.agg().expected_fold();
    assert_eq!(z.fold.len(), expected.len());
    for (k, &(count, _)) in &expected {
        assert_eq!(z.fold[k].0, count, "count for key {k}");
    }
}

#[test]
fn cereal_backend_outruns_software() {
    // Large coalesced batches: the regime the accelerator is built for
    // (its units are bandwidth-bound; tiny requests pay fixed latency).
    let mut cfg = tiny();
    cfg.flush_bytes = 64 << 10;
    let kryo = run_backend(&cfg, Backend::Kryo).unwrap();
    let cereal = run_backend(&cfg, Backend::Cereal).unwrap();
    assert!(
        cereal.report.ser_busy_ns < kryo.report.ser_busy_ns,
        "the accelerator must serialize faster than Kryo: {} vs {}",
        cereal.report.ser_busy_ns,
        kryo.report.ser_busy_ns
    );
    assert!(
        cereal.report.de_busy_ns < kryo.report.de_busy_ns,
        "the accelerator must deserialize faster than Kryo: {} vs {}",
        cereal.report.de_busy_ns,
        kryo.report.de_busy_ns
    );
    assert!(cereal.report.net.makespan_ns < kryo.report.net.makespan_ns);
}
