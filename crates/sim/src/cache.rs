//! Set-associative cache hierarchy (the paper's host: i7-7820X).
//!
//! Three levels with Table I geometry — 32 KB L1D, 1 MB private L2,
//! 11 MB shared L3 — 64 B lines, LRU replacement, write-allocate,
//! write-back. The hierarchy reports which level served each access and
//! counts per-level hits/misses plus DRAM fill/write-back traffic, feeding
//! the LLC-miss-rate and bandwidth panels of Fig. 3.

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3 (LLC).
    L3,
    /// Missed everywhere; served by DRAM.
    Memory,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug)]
pub struct LevelConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line: u64,
}

impl LevelConfig {
    fn sets(&self) -> usize {
        (self.capacity / (self.line * self.ways as u64)) as usize
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One set-associative cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: LevelConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// A cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide into whole sets.
    pub fn new(cfg: LevelConfig) -> Self {
        let nsets = cfg.sets();
        assert!(nsets > 0, "cache too small for its ways/line");
        assert_eq!(
            cfg.capacity,
            nsets as u64 * cfg.line * cfg.ways as u64,
            "geometry must tile capacity exactly"
        );
        Cache {
            cfg,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    cfg.ways
                ];
                nsets
            ],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.cfg.line;
        ((block as usize) % self.sets.len(), block / self.sets.len() as u64)
    }

    /// Looks up a line; on hit, refreshes LRU and applies `write` to the
    /// dirty bit. Returns whether it hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Fills a line (after a miss was serviced below), returning the
    /// evicted dirty line's address if a write-back is needed.
    pub fn fill(&mut self, addr: u64, write: bool) -> Option<u64> {
        self.tick += 1;
        let line_bytes = self.cfg.line;
        let nsets = self.sets.len() as u64;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        let evicted = (victim.valid && victim.dirty).then(|| {
            (victim.tag * nsets + set_idx as u64) * line_bytes
        });
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = write;
        victim.lru = self.tick;
        evicted
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 if never accessed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Three-level hierarchy with the i7-7820X geometry.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// Private unified L2.
    pub l2: Cache,
    /// Shared LLC.
    pub l3: Cache,
    /// Line size shared by all levels.
    pub line: u64,
    /// 64 B lines written back to DRAM.
    pub writebacks: u64,
}

impl Hierarchy {
    /// The evaluation machine's hierarchy (Table I).
    pub fn i7_7820x() -> Self {
        let line = 64;
        Hierarchy {
            l1: Cache::new(LevelConfig {
                capacity: 32 << 10,
                ways: 8,
                line,
            }),
            l2: Cache::new(LevelConfig {
                capacity: 1 << 20,
                ways: 16,
                line,
            }),
            l3: Cache::new(LevelConfig {
                capacity: 11 << 20,
                ways: 11,
                line,
            }),
            line,
            writebacks: 0,
        }
    }

    /// Accesses one address (the caller splits multi-line accesses).
    /// Returns the serving level; misses are filled top-down
    /// (write-allocate) and dirty LLC evictions counted as write-backs.
    pub fn access(&mut self, addr: u64, write: bool) -> HitLevel {
        if self.l1.access(addr, write) {
            return HitLevel::L1;
        }
        if self.l2.access(addr, write) {
            self.l1.fill(addr, write);
            return HitLevel::L2;
        }
        if self.l3.access(addr, write) {
            self.l2.fill(addr, write);
            self.l1.fill(addr, write);
            return HitLevel::L3;
        }
        // Miss to memory: fill all levels; dirty LLC victims write back.
        if self.l3.fill(addr, write).is_some() {
            self.writebacks += 1;
        }
        self.l2.fill(addr, write);
        self.l1.fill(addr, write);
        HitLevel::Memory
    }

    /// Splits an arbitrary `[addr, addr+bytes)` access into line accesses
    /// and returns the worst (slowest) serving level.
    pub fn access_range(&mut self, addr: u64, bytes: u64, write: bool) -> HitLevel {
        let first = addr / self.line;
        let last = (addr + bytes.max(1) - 1) / self.line;
        let mut worst = HitLevel::L1;
        for block in first..=last {
            let level = self.access(block * self.line, write);
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    /// LLC (L3) miss rate — Fig. 3(b)'s metric.
    pub fn llc_miss_rate(&self) -> f64 {
        self.l3.miss_rate()
    }

    /// Total lines fetched from DRAM (L3 misses) — fill traffic.
    pub fn dram_fills(&self) -> u64 {
        self.l3.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(LevelConfig {
            capacity: 1024,
            ways: 2,
            line: 64,
        }) // 8 sets
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        c.fill(0x1000, false);
        assert!(c.access(0x1000, false));
        assert!(c.access(0x1038, false), "same 64 B line");
        assert!(!c.access(0x1040, false), "next line misses");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets*line = 512).
        c.fill(0x0, false);
        c.fill(0x200, false);
        assert!(c.access(0x0, false)); // refresh 0x0
        c.fill(0x400, false); // evicts 0x200 (LRU)
        assert!(c.access(0x0, false));
        assert!(!c.access(0x200, false));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.fill(0x0, true); // dirty
        c.fill(0x200, false);
        let evicted = c.fill(0x400, false);
        assert_eq!(evicted, Some(0x0));
    }

    #[test]
    fn clean_eviction_reports_none() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x200, false);
        assert_eq!(c.fill(0x400, false), None);
    }

    #[test]
    fn hierarchy_promotes_through_levels() {
        let mut h = Hierarchy::i7_7820x();
        assert_eq!(h.access(0x1000, false), HitLevel::Memory);
        assert_eq!(h.access(0x1000, false), HitLevel::L1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = Hierarchy::i7_7820x();
        h.access(0x0, false);
        // Blow out L1 (32 KB, 8-way, 64 sets): 9+ lines in the same set.
        // Set stride in L1 = 64 sets * 64 B = 4 KB.
        for i in 1..=16u64 {
            h.access(i * 4096, false);
        }
        // 0x0 was evicted from L1 but lives in L2.
        assert_eq!(h.access(0x0, false), HitLevel::L2);
    }

    #[test]
    fn streaming_misses_dominate() {
        let mut h = Hierarchy::i7_7820x();
        // Stream 64 MB: far beyond LLC, every new line misses.
        for i in 0..100_000u64 {
            h.access(i * 64, false);
        }
        assert!(h.llc_miss_rate() > 0.99);
        assert_eq!(h.dram_fills(), 100_000);
    }

    #[test]
    fn working_set_in_l1_hits() {
        let mut h = Hierarchy::i7_7820x();
        for round in 0..10 {
            for i in 0..256u64 {
                // 16 KB working set
                h.access(i * 64, false);
            }
            if round == 0 {
                continue;
            }
        }
        assert!(h.l1.miss_rate() < 0.15, "rate {}", h.l1.miss_rate());
    }

    #[test]
    fn writebacks_counted_at_llc() {
        let mut h = Hierarchy::i7_7820x();
        // Write-stream far beyond LLC capacity twice so dirty lines evict.
        for i in 0..400_000u64 {
            h.access(i * 64, true);
        }
        assert!(h.writebacks > 0);
    }

    #[test]
    fn range_access_splits_lines() {
        let mut h = Hierarchy::i7_7820x();
        // 128 B spanning two lines: worst level is Memory on first touch.
        assert_eq!(h.access_range(0x100, 128, false), HitLevel::Memory);
        assert_eq!(h.access_range(0x100, 128, false), HitLevel::L1);
        // Crossing a line boundary mid-word also touches two lines.
        assert_eq!(h.access_range(0x1fc, 8, false), HitLevel::Memory);
        assert_eq!(h.access_range(0x200, 8, false), HitLevel::L1);
    }

    #[test]
    fn hitlevel_ordering() {
        assert!(HitLevel::L1 < HitLevel::L2);
        assert!(HitLevel::L3 < HitLevel::Memory);
    }
}
