//! Per-operation cost constants for the CPU model — the single source of
//! truth promised in DESIGN.md.
//!
//! These were set once from first principles (instruction counts of the
//! JDK/Kryo code paths they stand for), sanity-checked against the
//! paper's §III observations (software S/D IPC ≈ 1, Kryo ≈ 2.3× Java on
//! serialization and ≈ 50× on deserialization), and then frozen. The
//! Cereal accelerator model shares none of these — its performance falls
//! out of the architecture model in the `cereal` crate.

/// Micro-op and behavioral costs of each [`serializers::Op`] class.
#[derive(Clone, Copy, Debug)]
pub struct OpCosts {
    /// Address generation + load issue.
    pub load_uops: u32,
    /// Address generation + store issue (retires via the store buffer).
    pub store_uops: u32,
    /// Compare + branch.
    pub branch_uops: u32,
    /// Fraction of branches mispredicted (S/D control flow is data-
    /// dependent but highly repetitive).
    pub branch_misp_rate: f64,
    /// Pipeline refill penalty in cycles.
    pub branch_misp_penalty: f64,
    /// Plain call + return (argument setup, frame).
    pub call_uops: u32,
    /// `java.lang.reflect` accessor body: access-control check, modifier
    /// tests, box/unbox, invocation trampoline — ~80 instructions in the
    /// JDK fast path.
    pub reflect_uops: u32,
    /// Dependent dictionary loads inside a reflective access (Field
    /// object, type metadata) — these are the pointer chases that sink
    /// Java S/D's IPC.
    pub reflect_dep_loads: u32,
    /// Loop setup for a string comparison.
    pub str_cmp_base_uops: u32,
    /// Bytes compared per uop (SIMD-ish 8 B/cycle).
    pub str_cmp_bytes_per_uop: u32,
    /// Hash + probe arithmetic of one hash-table lookup.
    pub hash_uops: u32,
    /// Dependent probe loads per hash lookup (bucket then entry).
    pub hash_dep_loads: u32,
    /// TLAB bump-pointer allocation fast path: pointer bump, class-init
    /// check, header stores.
    pub alloc_base_uops: u32,
    /// Zero-initialization throughput: bytes cleared per uop.
    pub alloc_zero_bytes_per_uop: u32,
}

impl Default for OpCosts {
    fn default() -> Self {
        OpCosts {
            // A managed-runtime load/store is never one instruction:
            // null/bounds checks, compressed-oop decode, write barriers
            // and stream-position bookkeeping ride along.
            load_uops: 2,
            store_uops: 6,
            branch_uops: 1,
            branch_misp_rate: 0.03,
            branch_misp_penalty: 14.0,
            // Virtual dispatch through a serializer interface.
            call_uops: 8,
            reflect_uops: 120,
            reflect_dep_loads: 2,
            str_cmp_base_uops: 8,
            str_cmp_bytes_per_uop: 8,
            hash_uops: 25,
            hash_dep_loads: 1,
            alloc_base_uops: 30,
            alloc_zero_bytes_per_uop: 16,
        }
    }
}

/// Byte size of the region the reflection dictionaries (Class/Field
/// objects, method tables) occupy — larger than the private L2, so
/// reflective chases usually cost at least an LLC round trip.
pub const DICT_REGION_BYTES: u64 = 4 << 20;
/// Base address of the dictionary region.
pub const DICT_REGION_BASE: u64 = 0x50_0000_0000;
/// Byte size of the identity-map / type-registry hash-table region. The
/// identity maps of MB-scale object graphs are themselves MB-scale: they
/// overflow the L2 but largely fit in the 11 MB LLC, so each probe costs
/// an LLC round trip with an occasional DRAM miss — consistent with the
/// high-L2-miss, IPC ≈ 1 profile of Fig. 3.
pub const HASH_REGION_BYTES: u64 = 2 << 20;
/// Base address of the hash-table region.
pub const HASH_REGION_BASE: u64 = 0x60_0000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OpCosts::default();
        assert!(c.reflect_uops > 10 * c.call_uops, "reflection must dwarf a call");
        assert!(c.branch_misp_rate > 0.0 && c.branch_misp_rate < 0.5);
        assert!(c.str_cmp_bytes_per_uop > 0);
        // Const asserts: region sizes must exceed the 1 MB L2.
        const _: () = assert!(HASH_REGION_BYTES > 1 << 20);
        const _: () = assert!(DICT_REGION_BYTES > 1 << 20);
    }
}
