//! Trace-driven CPU timing model (the paper's host, Table I).
//!
//! Consumes the [`serializers::Op`] stream a functional serializer emits
//! and produces cycles, IPC, LLC miss rate and DRAM bandwidth — the four
//! panels of the paper's Fig. 3. The model captures exactly the
//! bottlenecks §III identifies:
//!
//! * **dependent (pointer-chasing) loads serialize**: a load flagged
//!   `dependent` cannot issue before the previous chain load's data is
//!   back, so graph traversal runs at memory latency, not bandwidth;
//! * **independent loads overlap up to an MLP cap** modeled after the
//!   instruction-window/LSQ limit (10 outstanding misses), so even
//!   streaming phases cannot saturate the DDR4 channels from one core;
//! * reflective accesses and hash probes perform *internal* dependent
//!   loads into dictionary/hash-table regions larger than the private
//!   caches, which is why Java S/D's IPC hovers around 1.
//!
//! The model is deliberately *not* cycle-accurate micro-architecture — it
//! is the standard trace-driven abstraction used for first-order DSE, and
//! all cost constants live in [`costs::OpCosts`].

pub mod costs;

use crate::cache::{Hierarchy, HitLevel};
use crate::dram::Dram;
use serializers::{Op, TraceSink};

pub use costs::OpCosts;

/// Operation classes the optional telemetry accounting attributes time
/// to. Order matches [`Cpu::op_classes`] output.
pub const OP_CLASS_NAMES: [&str; 10] = [
    "load.dep",
    "load.indep",
    "store",
    "alu",
    "branch",
    "call",
    "reflect_call",
    "str_compare",
    "hash_lookup",
    "alloc",
];

fn op_class(op: &Op) -> usize {
    match op {
        Op::Load { dependent: true, .. } => 0,
        Op::Load { dependent: false, .. } => 1,
        Op::Store { .. } => 2,
        Op::Alu(_) => 3,
        Op::Branch => 4,
        Op::Call => 5,
        Op::ReflectCall => 6,
        Op::StrCompare(_) => 7,
        Op::HashLookup => 8,
        Op::Alloc(_) => 9,
    }
}

/// CPU model configuration.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Sustained issue width (uops per cycle).
    pub issue_width: f64,
    /// Maximum overlapped outstanding misses (window/LSQ-limited MLP).
    pub mlp: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: f64,
    /// L2 hit latency in cycles.
    pub l2_latency: f64,
    /// L3 hit latency in cycles.
    pub l3_latency: f64,
    /// Per-op costs.
    pub costs: OpCosts,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            freq_ghz: 3.6,
            issue_width: 4.0,
            mlp: 10,
            l1_latency: 4.0,
            l2_latency: 14.0,
            l3_latency: 44.0,
            costs: OpCosts::default(),
        }
    }
}

/// Measured outcome of one traced phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuReport {
    /// Total cycles.
    pub cycles: f64,
    /// Wall time in nanoseconds.
    pub ns: f64,
    /// Micro-ops executed.
    pub uops: u64,
    /// Achieved uops per cycle.
    pub ipc: f64,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Achieved DRAM bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Fraction of peak DRAM bandwidth used.
    pub bandwidth_util: f64,
}

/// The CPU model. Implements [`TraceSink`]; feed it a serializer run and
/// call [`Cpu::report`].
///
/// ```
/// use sim::Cpu;
/// use serializers::{Op, TraceSink};
/// let mut cpu = Cpu::host();
/// cpu.op(Op::Load { addr: 0x4000_0000, bytes: 8, dependent: true });
/// cpu.op(Op::Alu(12));
/// let r = cpu.report();
/// assert!(r.ns > 40.0, "a cold dependent load pays DRAM latency");
/// ```
#[derive(Clone, Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    cache: Hierarchy,
    dram: Dram,
    /// Issue-side clock in cycles.
    cycle: f64,
    /// Completion time of the last dependent-chain load.
    chain_ready: f64,
    /// Completion times of in-flight independent misses (≤ mlp).
    outstanding: Vec<f64>,
    /// Furthest completion seen (for end-of-run drain).
    horizon: f64,
    uops: u64,
    branches: u64,
    /// Deterministic generator for internal dictionary/hash addresses.
    lcg: u64,
    writebacks_charged: u64,
    wb_spread: u64,
    /// Attribute issue-clock time and uops per op class. Off by default:
    /// the hot path pays only this branch.
    track_classes: bool,
    class_cycles: [f64; OP_CLASS_NAMES.len()],
    class_uops: [u64; OP_CLASS_NAMES.len()],
}

impl Cpu {
    /// A CPU with the given configuration and a fresh memory system.
    pub fn new(cfg: CpuConfig) -> Self {
        Cpu {
            cfg,
            cache: Hierarchy::i7_7820x(),
            dram: Dram::default(),
            cycle: 0.0,
            chain_ready: 0.0,
            outstanding: Vec::new(),
            horizon: 0.0,
            uops: 0,
            branches: 0,
            lcg: 0x243f_6a88_85a3_08d3,
            writebacks_charged: 0,
            wb_spread: 0,
            track_classes: false,
            class_cycles: [0.0; OP_CLASS_NAMES.len()],
            class_uops: [0; OP_CLASS_NAMES.len()],
        }
    }

    /// A CPU with the default (Table I) configuration.
    pub fn host() -> Self {
        Cpu::new(CpuConfig::default())
    }

    /// A CPU sharing an existing DRAM system — used to model multiple
    /// cores: each core gets private caches, all contend for the same
    /// channels (the DRAM model's time-bucket ledger makes sequential
    /// simulation of concurrent cores order-insensitive).
    pub fn with_dram(cfg: CpuConfig, dram: Dram) -> Self {
        let mut cpu = Cpu::new(cfg);
        cpu.dram = dram;
        cpu
    }

    /// Extracts the DRAM system (to hand to the next simulated core).
    pub fn into_dram(self) -> Dram {
        self.dram
    }

    fn ns_of(&self, cycles: f64) -> f64 {
        cycles / self.cfg.freq_ghz
    }

    fn cycles_of_ns(&self, ns: f64) -> f64 {
        ns * self.cfg.freq_ghz
    }

    fn issue_uops(&mut self, n: u32) {
        self.uops += u64::from(n);
        self.cycle += f64::from(n) / self.cfg.issue_width;
    }

    fn next_rand(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.lcg >> 17
    }

    /// Memory latency in cycles for a serviced access, issuing DRAM
    /// transactions for misses.
    fn mem_latency(&mut self, addr: u64, bytes: u64, write: bool, issue_cycle: f64) -> f64 {
        let before_wb = self.cache.writebacks;
        let level = self.cache.access_range(addr, bytes, write);
        // Dirty LLC evictions drain asynchronously but consume bandwidth.
        let new_wb = self.cache.writebacks - before_wb;
        for _ in 0..new_wb {
            self.wb_spread = self.wb_spread.wrapping_add(64);
            let now_ns = self.ns_of(issue_cycle);
            self.dram.write(0x7000_0000 + self.wb_spread, 64, now_ns);
            self.writebacks_charged += 1;
        }
        match level {
            HitLevel::L1 => self.cfg.l1_latency,
            HitLevel::L2 => self.cfg.l2_latency,
            HitLevel::L3 => self.cfg.l3_latency,
            HitLevel::Memory => {
                let lines = (addr + bytes.max(1) - 1) / 64 - addr / 64 + 1;
                let now_ns = self.ns_of(issue_cycle);
                let done_ns = self.dram.read(addr, lines * 64, now_ns);
                self.cycles_of_ns(done_ns - now_ns)
            }
        }
    }

    fn dependent_load(&mut self, addr: u64, bytes: u64) {
        self.issue_uops(self.cfg.costs.load_uops);
        let issue = self.cycle.max(self.chain_ready);
        let lat = self.mem_latency(addr, bytes, false, issue);
        let done = issue + lat;
        self.chain_ready = done;
        // The consumer of a chased pointer stalls the pipeline.
        self.cycle = done;
        self.horizon = self.horizon.max(done);
    }

    fn independent_load(&mut self, addr: u64, bytes: u64) {
        self.issue_uops(self.cfg.costs.load_uops);
        let mut issue = self.cycle;
        // MLP cap: with a full miss window, wait for the earliest slot.
        self.outstanding.retain(|&t| t > issue);
        if self.outstanding.len() >= self.cfg.mlp {
            let earliest = self
                .outstanding
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            issue = issue.max(earliest);
            self.outstanding.retain(|&t| t > issue);
            self.cycle = issue;
        }
        let lat = self.mem_latency(addr, bytes, false, issue);
        let done = issue + lat;
        if lat > self.cfg.l3_latency {
            self.outstanding.push(done);
        }
        self.horizon = self.horizon.max(done);
    }

    fn store(&mut self, addr: u64, bytes: u64) {
        self.issue_uops(self.cfg.costs.store_uops);
        // Stores retire through the store buffer; the fill traffic of a
        // write-allocate miss still hits DRAM.
        let issue = self.cycle;
        let _ = self.mem_latency(addr, bytes, true, issue);
    }

    /// Internal dependent load into a synthetic runtime region
    /// (reflection dictionaries, hash tables).
    fn internal_chase(&mut self, base: u64, span: u64) {
        let addr = base + (self.next_rand() % (span / 64)) * 64;
        self.dependent_load(addr, 8);
    }

    /// Finishes the run and reports.
    pub fn report(&self) -> CpuReport {
        let cycles = self.cycle.max(self.horizon);
        let ns = self.ns_of(cycles);
        CpuReport {
            cycles,
            ns,
            uops: self.uops,
            ipc: telemetry::ratio(self.uops as f64, cycles),
            llc_miss_rate: self.cache.llc_miss_rate(),
            dram_bytes: self.dram.total_bytes(),
            bandwidth_gbps: self.dram.bandwidth_gbps(ns),
            bandwidth_util: self.dram.utilization(ns),
        }
    }

    /// Read access to the cache hierarchy (tests, diagnostics).
    pub fn cache(&self) -> &Hierarchy {
        &self.cache
    }

    /// Read access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Turns per-op-class time/uop attribution on or off. Off (the
    /// default) the accounting costs one predictable branch per op, so
    /// wall-clock measurements of the model itself are unaffected.
    pub fn track_op_classes(&mut self, on: bool) {
        self.track_classes = on;
    }

    /// Per-class `(name, ns, uops)` attribution for classes that
    /// executed, in [`OP_CLASS_NAMES`] order. Empty unless
    /// [`Cpu::track_op_classes`] was enabled. Attribution is issue-clock
    /// time: overlapped miss latency lands on the op that stalled for it.
    pub fn op_classes(&self) -> Vec<(&'static str, f64, u64)> {
        OP_CLASS_NAMES
            .iter()
            .zip(self.class_cycles.iter().zip(&self.class_uops))
            .filter(|(_, (&c, &u))| c > 0.0 || u > 0)
            .map(|(&name, (&c, &u))| (name, self.ns_of(c), u))
            .collect()
    }

    /// Executes one traced operation. This is the single implementation
    /// behind both [`TraceSink::op`] and the batched [`TraceSink::ops`]
    /// slice path, so the two are bit-identical by construction
    /// (golden-tested in `tests/prop_timing.rs`).
    pub fn exec(&mut self, op: Op) {
        if self.track_classes {
            let class = op_class(&op);
            let (cycle0, uops0) = (self.cycle, self.uops);
            self.exec_inner(op);
            self.class_cycles[class] += self.cycle - cycle0;
            self.class_uops[class] += self.uops - uops0;
        } else {
            self.exec_inner(op);
        }
    }

    fn exec_inner(&mut self, op: Op) {
        let costs = self.cfg.costs;
        match op {
            Op::Load {
                addr,
                bytes,
                dependent,
            } => {
                if dependent {
                    self.dependent_load(addr, u64::from(bytes));
                } else {
                    self.independent_load(addr, u64::from(bytes));
                }
            }
            Op::Store { addr, bytes } => self.store(addr, u64::from(bytes)),
            Op::Alu(n) => self.issue_uops(n),
            Op::Branch => {
                self.issue_uops(costs.branch_uops);
                self.branches += 1;
                // Amortized misprediction cost.
                self.cycle += costs.branch_misp_rate * costs.branch_misp_penalty;
            }
            Op::Call => self.issue_uops(costs.call_uops),
            Op::ReflectCall => {
                self.issue_uops(costs.reflect_uops);
                for _ in 0..costs.reflect_dep_loads {
                    self.internal_chase(costs::DICT_REGION_BASE, costs::DICT_REGION_BYTES);
                }
            }
            Op::StrCompare(n) => {
                self.issue_uops(
                    costs.str_cmp_base_uops + n.div_ceil(costs.str_cmp_bytes_per_uop),
                );
            }
            Op::HashLookup => {
                self.issue_uops(costs.hash_uops);
                for _ in 0..costs.hash_dep_loads {
                    self.internal_chase(costs::HASH_REGION_BASE, costs::HASH_REGION_BYTES);
                }
            }
            Op::Alloc(bytes) => {
                // Zero-init fill traffic is accounted by the header/field
                // stores the deserializers emit at the real addresses.
                self.issue_uops(
                    costs.alloc_base_uops + bytes.div_ceil(costs.alloc_zero_bytes_per_uop),
                );
            }
        }
    }
}

impl TraceSink for Cpu {
    fn op(&mut self, op: Op) {
        self.exec(op);
    }

    /// Slice consumption: one virtual call covers the whole batch, and
    /// the per-op loop below is monomorphic — the point of trace
    /// batching. The op sequence (and therefore every simulated time) is
    /// exactly what per-op delivery produces.
    fn ops(&mut self, ops: &[Op]) {
        for &op in ops {
            self.exec(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependent_chain_runs_at_latency() {
        let mut cpu = Cpu::host();
        // 1000 dependent loads over a 64 MB region: all DRAM misses.
        let mut addr = 0x1000_0000u64;
        for i in 0..1000u64 {
            cpu.op(Op::Load {
                addr,
                bytes: 8,
                dependent: true,
            });
            addr = 0x1000_0000 + ((i * 2654435761) % (64 << 20)) / 64 * 64;
        }
        let r = cpu.report();
        // ≥ 40 ns per load: nothing overlaps.
        assert!(r.ns >= 1000.0 * 40.0, "got {} ns", r.ns);
        assert!(r.ipc < 0.1, "pointer chasing must crater IPC, got {}", r.ipc);
        assert!(r.bandwidth_util < 0.05);
    }

    #[test]
    fn independent_streams_overlap() {
        let mut chase = Cpu::host();
        let mut stream = Cpu::host();
        for i in 0..20_000u64 {
            let addr = 0x1000_0000 + i * 64;
            chase.op(Op::Load {
                addr,
                bytes: 8,
                dependent: true,
            });
            stream.op(Op::Load {
                addr,
                bytes: 8,
                dependent: false,
            });
        }
        let rc = chase.report();
        let rs = stream.report();
        assert!(
            rs.ns * 3.0 < rc.ns,
            "independent {} ns should be ≫ faster than dependent {} ns",
            rs.ns,
            rc.ns
        );
        assert!(rs.bandwidth_util > rc.bandwidth_util * 2.0);
    }

    #[test]
    fn mlp_cap_limits_streaming_bandwidth() {
        // Even a pure independent-miss stream must stay well below peak:
        // 10 in-flight misses × 64 B per ~43 ns window ≈ 15 GB/s ≈ 20 %.
        let mut cpu = Cpu::host();
        for i in 0..50_000u64 {
            cpu.op(Op::Load {
                addr: 0x2000_0000 + i * 64,
                bytes: 8,
                dependent: false,
            });
        }
        let r = cpu.report();
        assert!(
            r.bandwidth_util < 0.5,
            "window-limited MLP must not saturate DRAM, got {}",
            r.bandwidth_util
        );
        assert!(r.bandwidth_util > 0.02);
    }

    #[test]
    fn alu_work_reaches_issue_width() {
        let mut cpu = Cpu::host();
        cpu.op(Op::Alu(1_000_000));
        let r = cpu.report();
        assert!((r.ipc - 4.0).abs() < 0.1, "pure ALU should hit width, got {}", r.ipc);
    }

    #[test]
    fn reflection_is_much_slower_than_calls() {
        let mut refl = Cpu::host();
        let mut call = Cpu::host();
        for _ in 0..10_000 {
            refl.op(Op::ReflectCall);
            call.op(Op::Call);
        }
        let rr = refl.report();
        let rc = call.report();
        assert!(
            rr.ns > rc.ns * 20.0,
            "reflection {} ns vs call {} ns",
            rr.ns,
            rc.ns
        );
    }

    #[test]
    fn l1_hits_are_cheap() {
        let mut cpu = Cpu::host();
        // Touch once to warm, then hammer the same line dependently.
        for _ in 0..10_001 {
            cpu.op(Op::Load {
                addr: 0x1000,
                bytes: 8,
                dependent: true,
            });
        }
        let r = cpu.report();
        // ~4 cycles per L1 hit ≈ 1.1 ns.
        assert!(r.ns < 10_001.0 * 3.0, "got {} ns", r.ns);
    }

    #[test]
    fn stores_do_not_stall_but_count_traffic() {
        let mut cpu = Cpu::host();
        for i in 0..20_000u64 {
            cpu.op(Op::Store {
                addr: 0x4000_0000 + i * 64,
                bytes: 8,
            });
        }
        let r = cpu.report();
        assert!(r.dram_bytes > 0, "write-allocate fills must hit DRAM");
        assert!(r.ipc > 2.0, "stores retire via the store buffer, got {}", r.ipc);
    }

    #[test]
    fn branches_pay_amortized_misprediction() {
        let mut cpu = Cpu::host();
        for _ in 0..100_000 {
            cpu.op(Op::Branch);
        }
        let r = cpu.report();
        // 1 uop/4-wide = 0.25 cyc + 0.03×14 = 0.42 cyc ⇒ IPC ≈ 1.5.
        assert!(r.ipc < 2.0 && r.ipc > 1.0, "got {}", r.ipc);
    }

    #[test]
    fn op_class_attribution_sums_to_totals() {
        let mut cpu = Cpu::host();
        cpu.track_op_classes(true);
        cpu.op(Op::Alu(100));
        cpu.op(Op::Load {
            addr: 0x1000_0000,
            bytes: 8,
            dependent: true,
        });
        cpu.op(Op::Branch);
        let classes = cpu.op_classes();
        assert!(classes.iter().any(|c| c.0 == "load.dep"));
        assert!(classes.iter().any(|c| c.0 == "alu"));
        let uops: u64 = classes.iter().map(|c| c.2).sum();
        assert_eq!(uops, cpu.report().uops);
        let ns: f64 = classes.iter().map(|c| c.1).sum();
        assert!((ns - cpu.ns_of(cpu.cycle)).abs() < 1e-9, "{ns}");
        // Off by default: an untracked CPU reports nothing.
        let mut plain = Cpu::host();
        plain.op(Op::Alu(4));
        assert!(plain.op_classes().is_empty());
    }

    #[test]
    fn report_zero_state() {
        let cpu = Cpu::host();
        let r = cpu.report();
        assert_eq!(r.uops, 0);
        assert_eq!(r.ipc, 0.0);
    }
}
