//! Disk device model for spill and persistence.
//!
//! The block store (`crates/store`) needs a fourth device class next to
//! DRAM, caches, and the network: a block device with a per-operation
//! positioning cost and finite transfer bandwidth. The model follows the
//! same order-insensitive time-bucket ledger as [`crate::dram`] and
//! [`crate::net`], so requests issued by sequentially simulated
//! executors overlap in simulated time exactly as they would on real
//! hardware:
//!
//! * **seek**: an access whose offset is not where the previous access
//!   left the head pays the configured positioning latency (mechanical
//!   seek + rotational delay on an HDD; FTL/translation and command
//!   overhead on flash). Sequential continuation is free — the regime
//!   spill files are laid out for;
//! * **transfer**: `bytes / bytes_per_ns`, booked against the device's
//!   bandwidth ledger so concurrent spills and fetches queue instead of
//!   magically overlapping.

/// Disk configuration.
#[derive(Clone, Copy, Debug)]
pub struct DiskConfig {
    /// Sustained transfer bandwidth in bytes per nanosecond
    /// (1 GB/s = 1.0 B/ns).
    pub bytes_per_ns: f64,
    /// Positioning cost in nanoseconds for a non-sequential access.
    pub seek_ns: f64,
    /// Display name for reports.
    pub name: &'static str,
}

impl DiskConfig {
    /// A 7200 rpm hard disk: ~160 MB/s sustained, ~8 ms average
    /// seek + rotational delay.
    pub fn hdd() -> Self {
        DiskConfig {
            bytes_per_ns: 0.16,
            seek_ns: 8_000_000.0,
            name: "hdd",
        }
    }

    /// A SATA SSD: ~500 MB/s, ~60 µs access overhead.
    pub fn ssd() -> Self {
        DiskConfig {
            bytes_per_ns: 0.5,
            seek_ns: 60_000.0,
            name: "ssd",
        }
    }

    /// An NVMe flash drive: ~3 GB/s, ~10 µs access overhead.
    pub fn nvme() -> Self {
        DiskConfig {
            bytes_per_ns: 3.0,
            seek_ns: 10_000.0,
            name: "nvme",
        }
    }

    /// Estimated uncontended service time of one `bytes`-sized
    /// non-sequential access — what a cost-based policy compares against
    /// a recomputation estimate before choosing a path.
    pub fn access_estimate_ns(&self, bytes: u64) -> f64 {
        self.seek_ns + bytes as f64 / self.bytes_per_ns
    }
}

/// Bucket granularity of the bandwidth ledger. Disk latencies are
/// tens-of-µs to ms scale; 1 µs buckets resolve queueing without
/// bloating the ledger.
const BUCKET_NS: f64 = 1000.0;

/// One serviced access on the device timeline — what the telemetry
/// exporter renders as a disk busy window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskWindow {
    /// Issue time (includes any seek in the window).
    pub start_ns: f64,
    /// Completion time.
    pub end_ns: f64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

/// The disk model: one head/queue position, one bandwidth ledger.
#[derive(Clone, Debug)]
pub struct Disk {
    cfg: DiskConfig,
    ledger: std::collections::HashMap<u64, f64>,
    /// Byte offset just past the previous access (sequential detection).
    head: u64,
    read_bytes: u64,
    write_bytes: u64,
    reads: u64,
    writes: u64,
    seeks: u64,
    /// Busy-window tape, recorded only when telemetry asks for it.
    tape: Option<Vec<DiskWindow>>,
}

impl Disk {
    /// A disk with the given configuration.
    pub fn new(cfg: DiskConfig) -> Self {
        Disk {
            cfg,
            ledger: std::collections::HashMap::new(),
            head: 0,
            read_bytes: 0,
            write_bytes: 0,
            reads: 0,
            writes: 0,
            seeks: 0,
            tape: None,
        }
    }

    /// Starts recording one [`DiskWindow`] per access. Off by default —
    /// the hot path pays one `Option` check.
    pub fn record_tape(&mut self) {
        self.tape.get_or_insert_with(Vec::new);
    }

    /// Drains the recorded busy windows (empty unless
    /// [`Disk::record_tape`] was called).
    pub fn take_tape(&mut self) -> Vec<DiskWindow> {
        self.tape.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The configuration.
    pub fn config(&self) -> DiskConfig {
        self.cfg
    }

    fn access(&mut self, offset: u64, bytes: u64, now_ns: f64, is_write: bool) -> f64 {
        debug_assert!(bytes > 0);
        let latency = if offset == self.head {
            0.0
        } else {
            self.seeks += 1;
            self.cfg.seek_ns
        };
        self.head = offset + bytes;
        let start = now_ns.max(0.0) + latency;
        let cap = BUCKET_NS * self.cfg.bytes_per_ns;
        let mut bucket = (start / BUCKET_NS) as u64;
        let mut left = bytes as f64;
        let finish;
        loop {
            let used = self.ledger.entry(bucket).or_insert(0.0);
            let free = cap - *used;
            if free >= left {
                *used += left;
                finish = bucket as f64 * BUCKET_NS + *used / self.cfg.bytes_per_ns;
                break;
            }
            left -= free;
            *used = cap;
            bucket += 1;
        }
        let service = bytes as f64 / self.cfg.bytes_per_ns;
        let done = finish.max(start + service);
        if let Some(tape) = &mut self.tape {
            tape.push(DiskWindow {
                start_ns: now_ns.max(0.0),
                end_ns: done,
                bytes,
                write: is_write,
            });
        }
        done
    }

    /// Reads `bytes` at `offset` starting at `now_ns`; returns the
    /// completion time.
    pub fn read(&mut self, offset: u64, bytes: u64, now_ns: f64) -> f64 {
        self.reads += 1;
        self.read_bytes += bytes;
        self.access(offset, bytes, now_ns, false)
    }

    /// Writes `bytes` at `offset` starting at `now_ns`; returns the
    /// completion time (data durable).
    pub fn write(&mut self, offset: u64, bytes: u64, now_ns: f64) -> f64 {
        self.writes += 1;
        self.write_bytes += bytes;
        self.access(offset, bytes, now_ns, true)
    }

    /// Bytes read so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written so far.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Read operations issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write operations issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Non-sequential accesses that paid the positioning cost.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Fraction of transfer bandwidth used over `elapsed_ns`.
    pub fn utilization(&self, elapsed_ns: f64) -> f64 {
        telemetry::ratio(
            (self.read_bytes + self.write_bytes) as f64,
            elapsed_ns * self.cfg.bytes_per_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_pays_seek() {
        let mut d = Disk::new(DiskConfig::ssd());
        let done = d.write(1 << 20, 1000, 0.0);
        // seek + 1000 B / 0.5 B/ns = 60 µs + 2 µs.
        assert!(done >= 60_000.0 + 2000.0 - 1.0, "got {done}");
        assert_eq!(d.seeks(), 1);
    }

    #[test]
    fn sequential_continuation_skips_seek() {
        let mut d = Disk::new(DiskConfig::ssd());
        let a = d.write(0, 4096, 0.0); // offset 0 == initial head: sequential
        let b = d.write(4096, 4096, a);
        assert_eq!(d.seeks(), 0, "back-to-back appends never seek");
        assert!(b - a < 10_000.0, "continuation is transfer-only, got {}", b - a);
    }

    #[test]
    fn hdd_seeks_dominate_small_random_reads() {
        let mut hdd = Disk::new(DiskConfig::hdd());
        let mut nvme = Disk::new(DiskConfig::nvme());
        let mut h = 0.0f64;
        let mut n = 0.0f64;
        for i in 0..10u64 {
            // Alternating far offsets: every access seeks (the first
            // starts past the initial head position).
            let off = (i % 2) * (1 << 30) + (i + 1) * (1 << 20);
            h = hdd.read(off, 4096, h);
            n = nvme.read(off, 4096, n);
        }
        assert!(h > n * 100.0, "hdd {h} should be orders slower than nvme {n}");
        assert_eq!(hdd.seeks(), 10);
    }

    #[test]
    fn bandwidth_saturates_and_queues() {
        let mut d = Disk::new(DiskConfig::nvme());
        // 100 × 1 MB sequential writes issued at t=0: they must queue.
        let mut last = 0.0f64;
        let mut off = 0u64;
        for _ in 0..100 {
            last = last.max(d.write(off, 1 << 20, 0.0));
            off += 1 << 20;
        }
        let util = d.utilization(last);
        assert!(util > 0.5, "util {util}");
        assert!(util <= 1.0 + 1e-9);
        // 100 MB at 3 GB/s ≈ 33 ms.
        assert!(last >= 100.0 * (1 << 20) as f64 / 3.0);
    }

    #[test]
    fn counters() {
        let mut d = Disk::new(DiskConfig::ssd());
        d.write(0, 100, 0.0);
        let t = d.read(0, 100, 1e9);
        assert!(t > 1e9);
        assert_eq!(d.read_bytes(), 100);
        assert_eq!(d.write_bytes(), 100);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.utilization(0.0), 0.0);
    }

    #[test]
    fn tape_records_only_when_enabled() {
        let mut d = Disk::new(DiskConfig::ssd());
        d.write(0, 64, 0.0);
        assert!(d.take_tape().is_empty(), "tape off by default");
        d.record_tape();
        let done = d.write(64, 4096, 10.0);
        let t = d.take_tape();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].bytes, 4096);
        assert!(t[0].write);
        assert_eq!(t[0].start_ns, 10.0);
        assert_eq!(t[0].end_ns, done);
        assert!(d.take_tape().is_empty(), "take drains");
    }

    #[test]
    fn access_estimate_matches_uncontended_access() {
        let cfg = DiskConfig::hdd();
        let mut d = Disk::new(cfg);
        let est = cfg.access_estimate_ns(1 << 20);
        let done = d.read(1 << 30, 1 << 20, 0.0);
        assert!(
            (done - est).abs() < BUCKET_NS + 1.0,
            "estimate {est} vs actual {done}"
        );
    }
}
