//! DDR4 memory-system model.
//!
//! Mirrors the paper's Table I memory system: DDR4-2400, 4 channels,
//! 19.2 GB/s per channel (76.8 GB/s aggregate), 40 ns zero-load latency.
//!
//! The model is a per-channel bandwidth queue: an access occupies its
//! channel for `bytes / channel_bandwidth` and completes one zero-load
//! latency after its service slot starts. Channels are interleaved on
//! 64 B line granularity. This is the same class of DRAM abstraction used
//! by the architectural simulators the paper builds on (ZSim, Sniper) and
//! is what both the CPU model and the Cereal accelerator model share — so
//! bandwidth-utilization comparisons (Figs. 11 and 15) come from one
//! meter.

/// DRAM configuration.
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Per-channel bandwidth in bytes per nanosecond (19.2 GB/s = 19.2 B/ns).
    pub channel_bytes_per_ns: f64,
    /// Zero-load latency in nanoseconds (a row-buffer *miss*).
    pub zero_load_ns: f64,
    /// Interleave granularity in bytes.
    pub interleave_bytes: u64,
    /// Banks per channel (row-buffer tracking granularity).
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Latency of a row-buffer *hit* in nanoseconds. The default equals
    /// `zero_load_ns` — row-buffer modeling off — so the Table I
    /// calibration is unchanged; use [`DramConfig::with_row_buffer`] for
    /// the finer model.
    pub row_hit_ns: f64,
    /// Fast-forward the capacity-ledger walk over buckets already known
    /// to be full instead of visiting them one by one. Purely a
    /// wall-clock optimization: completion times and booked capacity are
    /// identical either way (the skipped buckets would each contribute
    /// zero free capacity). Default on; turn off to run the
    /// tick-every-bucket reference walk.
    pub fast_forward: bool,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 4,
            channel_bytes_per_ns: 19.2,
            zero_load_ns: 40.0,
            interleave_bytes: 64,
            banks_per_channel: 4,
            row_bytes: 8192,
            row_hit_ns: 40.0,
            fast_forward: true,
        }
    }
}

impl DramConfig {
    /// The Table I system with open-row tracking: sequential streams pay
    /// ~26 ns row hits; random accesses pay the full 44 ns activate +
    /// access path.
    pub fn with_row_buffer() -> Self {
        DramConfig {
            zero_load_ns: 44.0,
            row_hit_ns: 26.0,
            ..Self::default()
        }
    }
}

impl DramConfig {
    /// Aggregate peak bandwidth in bytes per nanosecond (== GB/s).
    pub fn peak_bytes_per_ns(&self) -> f64 {
        self.channels as f64 * self.channel_bytes_per_ns
    }
}

/// Time-bucket granularity of the per-channel capacity ledger, in
/// nanoseconds. Fine enough to resolve zero-load-latency-scale queueing,
/// coarse enough to stay cheap.
const BUCKET_NS: f64 = 100.0;

/// The DRAM timing and accounting model.
///
/// ```
/// use sim::{Dram, DramConfig};
/// let mut dram = Dram::new(DramConfig::default());
/// let done = dram.read(0x1000, 64, 0.0);
/// assert!(done > 40.0, "zero-load latency applies");
/// assert_eq!(dram.total_bytes(), 64);
/// ```
///
/// Each channel is a fluid queue tracked in [`BUCKET_NS`] time buckets:
/// an access books `bytes` of channel capacity starting at its issue
/// bucket, spilling into later buckets when one is full. Booking is
/// order-*insensitive*, so independent requesters (the 8 SUs, 8 DUs, or
/// a CPU core) can be simulated one after another and still overlap in
/// simulated time exactly as concurrent hardware would — a plain
/// "channel-free-at" frontier would falsely serialize them.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Per-channel: booked bytes per time bucket.
    ledger: Vec<std::collections::HashMap<u64, f64>>,
    /// Per-channel skip pointer: every bucket below this index is full.
    frontier: Vec<u64>,
    /// Open row per (channel, bank).
    open_rows: Vec<Option<u64>>,
    row_hits: u64,
    row_misses: u64,
    total_bytes: u64,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// A DRAM with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            ledger: (0..cfg.channels).map(|_| std::collections::HashMap::new()).collect(),
            frontier: vec![0; cfg.channels],
            open_rows: vec![None; cfg.channels * cfg.banks_per_channel],
            row_hits: 0,
            row_misses: 0,
            cfg,
            total_bytes: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Issues a read of `bytes` at `addr` at time `now_ns`; returns the
    /// completion time (data available).
    pub fn read(&mut self, addr: u64, bytes: u64, now_ns: f64) -> f64 {
        self.reads += 1;
        self.access(addr, bytes, now_ns)
    }

    /// Issues a write of `bytes` at `addr` at time `now_ns`; returns the
    /// completion time (write drained).
    pub fn write(&mut self, addr: u64, bytes: u64, now_ns: f64) -> f64 {
        self.writes += 1;
        self.access(addr, bytes, now_ns)
    }

    fn access(&mut self, addr: u64, bytes: u64, now_ns: f64) -> f64 {
        debug_assert!(bytes > 0);
        let ch = ((addr / self.cfg.interleave_bytes) as usize) % self.cfg.channels;
        // Row-buffer lookup: same row in the same bank serves faster.
        let row = addr / self.cfg.row_bytes;
        let bank = (row as usize) % self.cfg.banks_per_channel;
        let slot = ch * self.cfg.banks_per_channel + bank;
        let latency = if self.open_rows[slot] == Some(row) {
            self.row_hits += 1;
            self.cfg.row_hit_ns
        } else {
            self.row_misses += 1;
            self.open_rows[slot] = Some(row);
            self.cfg.zero_load_ns
        };
        let cap = BUCKET_NS * self.cfg.channel_bytes_per_ns;
        let ledger = &mut self.ledger[ch];
        let mut bucket = (now_ns.max(0.0) / BUCKET_NS) as u64;
        // Fast-forward: every bucket below the frontier is full and would
        // only contribute `free == 0.0` steps to the walk below, so jump
        // straight over them. The tick-reference mode walks them all.
        if self.cfg.fast_forward && bucket < self.frontier[ch] {
            bucket = self.frontier[ch];
        }
        let first = bucket;
        let mut left = bytes as f64;
        let finish;
        loop {
            let used = ledger.entry(bucket).or_insert(0.0);
            let free = cap - *used;
            if free >= left {
                *used += left;
                // Completion point within this bucket, by cumulative fill.
                finish = bucket as f64 * BUCKET_NS + *used / self.cfg.channel_bytes_per_ns;
                break;
            }
            left -= free;
            *used = cap;
            bucket += 1;
        }
        // The walk saturated [first, bucket); if it started at or below
        // the frontier, everything below `bucket` is now full.
        if first <= self.frontier[ch] && bucket > self.frontier[ch] {
            self.frontier[ch] = bucket;
        }
        let service = bytes as f64 / self.cfg.channel_bytes_per_ns;
        self.total_bytes += bytes;
        finish.max(now_ns + service) + latency
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Read transactions issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Write transactions issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Fraction of aggregate peak bandwidth used over `elapsed_ns` — the
    /// meter behind Figs. 11 and 15.
    pub fn utilization(&self, elapsed_ns: f64) -> f64 {
        telemetry::ratio(
            self.total_bytes as f64,
            elapsed_ns * self.cfg.peak_bytes_per_ns(),
        )
    }

    /// Achieved bandwidth in GB/s over `elapsed_ns`.
    pub fn bandwidth_gbps(&self, elapsed_ns: f64) -> f64 {
        telemetry::ratio(self.total_bytes as f64, elapsed_ns)
    }

    /// Row-buffer hits observed (meaningful with
    /// [`DramConfig::with_row_buffer`]).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer misses observed.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Resets accounting (not channel state).
    pub fn reset_counters(&mut self) {
        self.total_bytes = 0;
        self.reads = 0;
        self.writes = 0;
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

impl Default for Dram {
    fn default() -> Self {
        Dram::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_latency_applies() {
        let mut d = Dram::default();
        let done = d.read(0, 64, 0.0);
        // 64 B at 19.2 B/ns ≈ 3.33 ns service + 40 ns latency.
        assert!((done - (64.0 / 19.2 + 40.0)).abs() < 1e-9);
    }

    #[test]
    fn same_channel_queues() {
        let mut d = Dram::default();
        let a = d.read(0, 64, 0.0);
        let b = d.read(0, 64, 0.0); // same channel (same line)
        assert!(b > a, "second access must queue behind the first");
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = Dram::default();
        let a = d.read(0, 64, 0.0);
        let b = d.read(64, 64, 0.0); // next line → next channel
        assert!((a - b).abs() < 1e-9, "distinct channels serve in parallel");
    }

    #[test]
    fn peak_bandwidth_is_sustainable() {
        let mut d = Dram::default();
        // Stream 1 MB across all channels back-to-back.
        let mut now = 0.0f64;
        let lines = 16384; // 1 MB / 64 B
        let mut last = 0.0f64;
        for i in 0..lines {
            last = last.max(d.read(i * 64, 64, now));
            // Issue as fast as possible; channel queues absorb.
            now += 64.0 / d.config().peak_bytes_per_ns();
        }
        let elapsed = last;
        let util = d.utilization(elapsed);
        assert!(util > 0.9, "streaming should approach peak, got {util}");
        assert!(util <= 1.0 + 1e-9);
    }

    #[test]
    fn single_channel_hotspot_caps_at_quarter() {
        let mut d = Dram::default();
        let mut now = 0.0f64;
        let mut last = 0.0f64;
        for _ in 0..4096 {
            last = last.max(d.read(0, 64, now));
            now += 1.0;
        }
        let util = d.utilization(last);
        assert!(util <= 0.25 + 1e-6, "one channel is a quarter of peak, got {util}");
    }

    #[test]
    fn row_buffer_rewards_sequential_streams() {
        let mut d = Dram::new(DramConfig::with_row_buffer());
        // Sequential within one 8 KB row on one channel: first access
        // opens the row, the rest hit.
        let mut now = 0.0;
        for i in 0..8u64 {
            d.read(i * 256, 64, now); // same channel? stride 256 → ch rotates
            now += 100.0;
        }
        assert!(d.row_hits() > 0, "sequential accesses should hit open rows");

        let mut rand = Dram::new(DramConfig::with_row_buffer());
        let mut now = 0.0;
        for i in 0..8u64 {
            // Same channel+bank, alternating rows: all misses.
            rand.read((i % 2) * 8192 * 16, 64, now);
            now += 100.0;
        }
        assert_eq!(rand.row_hits(), 0);
        assert_eq!(rand.row_misses(), 8);
    }

    #[test]
    fn row_buffer_changes_latency() {
        let mut d = Dram::new(DramConfig::with_row_buffer());
        let miss = d.read(0, 64, 0.0);
        let hit = d.read(64 * 4, 64, 1000.0) - 1000.0; // same row, same channel 0? stride 256 → ch (256/64)%4=0 ✓
        assert!(
            hit < miss,
            "row hit ({hit}) must be faster than the opening miss ({miss})"
        );
    }

    #[test]
    fn default_config_has_row_buffer_off() {
        let c = DramConfig::default();
        assert_eq!(c.row_hit_ns, c.zero_load_ns, "defaults preserve calibration");
    }

    #[test]
    fn counters_and_reset() {
        let mut d = Dram::default();
        d.read(0, 64, 0.0);
        d.write(64, 32, 0.0);
        assert_eq!(d.total_bytes(), 96);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        d.reset_counters();
        assert_eq!(d.total_bytes(), 0);
    }

    #[test]
    fn fast_forward_matches_tick_reference_exactly() {
        let mut ff = Dram::default();
        let mut tk = Dram::new(DramConfig {
            fast_forward: false,
            ..DramConfig::default()
        });
        // Deterministic mixed pattern: saturates channels, revisits the
        // saturated past, and strides across rows. Completion times must
        // be bit-identical — the skipped buckets only ever contribute
        // zero free capacity.
        let mut now = 0.0;
        for i in 0..3000u64 {
            let addr = (i * 97) % 4096 * 64;
            let bytes = 32 + (i % 7) * 48;
            let a = ff.read(addr, bytes, now);
            let b = tk.read(addr, bytes, now);
            assert_eq!(a.to_bits(), b.to_bits(), "access {i}");
            if i % 5 == 0 {
                now += 13.0;
            }
            if i % 601 == 0 {
                now = 0.0; // issue into the already-full past
            }
        }
        assert_eq!(ff.total_bytes(), tk.total_bytes());
        assert_eq!(ff.row_hits(), tk.row_hits());
    }

    #[test]
    fn utilization_handles_zero_elapsed() {
        let d = Dram::default();
        assert_eq!(d.utilization(0.0), 0.0);
        assert_eq!(d.bandwidth_gbps(0.0), 0.0);
    }
}
