//! Deterministic fault injection for the distributed-stack models.
//!
//! The shuffle service and block store model the happy path; real
//! Spark-class deployments spend a meaningful fraction of wall-clock on
//! stragglers, failed fetches, and lineage recomputation. This module
//! provides the seeded anomaly source every layer shares:
//!
//! * **wire corruption** — a byte of a [`crate::net`] transfer is
//!   flipped in flight; the receiver detects it via the stream's CRC
//!   frame ([`sdformat`]-level) and re-fetches;
//! * **link loss** — a transfer vanishes; the sender times out and
//!   retries with exponential backoff;
//! * **disk read error** — a [`crate::disk`] access returns a bad
//!   image; spill reloads retry, checksummed blocks with lineage fall
//!   back to recomputation;
//! * **mapper death** — a map executor dies mid-stage and its task is
//!   re-executed from scratch (Spark-style lineage re-execution);
//! * **accelerator fault** — one hardware serialization request fails
//!   and the affected partition degrades to a configured software
//!   serializer;
//! * **executor crash** — a cluster executor silently stops mid-task;
//!   the scheduler's heartbeat detector declares it dead, kills its
//!   in-flight attempt, and recomputes any lost outputs;
//! * **node failure** — a whole node (all its executors and its DU
//!   device contexts) goes down at once;
//! * **task failure** — one task attempt fails without taking its
//!   executor down (a flaky host); repeated failures on the same
//!   executor feed the scheduler's blacklist accounting.
//!
//! Determinism is the contract: every draw comes from a
//! [`sdheap::rng::Rng`] stream derived from `(seed, scope)`, where the
//! scope is a stable entity id (mapper index, global message index,
//! store instance) — never a thread or wall-clock artifact. Two runs
//! with the same seed see byte-identical fault schedules for any
//! worker-thread count, which is what lets CI `cmp` fault-sweep
//! reports.

use sdheap::rng::Rng;

/// Fault rates and recovery knobs. All rates are per-event
/// probabilities in `[0, 1]`; a rate of `0` disables that class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Base seed all scoped injector streams derive from.
    pub seed: u64,
    /// Per-transfer probability that one wire byte is corrupted.
    pub wire_corruption: f64,
    /// Per-transfer probability that the message is lost outright.
    pub link_loss: f64,
    /// Per-read probability that a disk access returns a bad image.
    pub disk_read_error: f64,
    /// Per-mapper probability that the executor dies mid-map-stage.
    pub mapper_death: f64,
    /// Per-request probability that the accelerator faults and the
    /// partition degrades to the software fallback serializer.
    pub accel_fault: f64,
    /// Per-reload probability that a spill image comes back corrupted
    /// (detected by the block checksum; recovered via lineage).
    pub spill_corruption: f64,
    /// Per-dispatch probability that a cluster executor crashes while
    /// running the dispatched attempt (drawn from the executor's scoped
    /// stream; the crash lands at an interior fraction of the service).
    pub exec_crash: f64,
    /// Per-dispatch probability that the executor's whole node fails
    /// (drawn from the node's scoped stream).
    pub node_failure: f64,
    /// Per-dispatch probability that the attempt fails without killing
    /// its executor (a flaky-task failure, retried with backoff).
    pub task_failure: f64,
    /// Retry budget: failed fetches are retried at most this many
    /// times; the final attempt within the budget always succeeds (the
    /// model guarantees forward progress, so folds stay exact).
    pub max_retries: u32,
    /// Initial retry backoff; attempt `k` waits `backoff_ns << k`.
    pub backoff_ns: f64,
    /// Loss-detection timeout a sender waits before declaring a
    /// transfer lost and retrying.
    pub timeout_ns: f64,
}

impl FaultConfig {
    /// All fault classes disabled (rates zero); recovery knobs keep
    /// their defaults so a zero-rate run is byte-identical to one with
    /// no injector at all.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            wire_corruption: 0.0,
            link_loss: 0.0,
            disk_read_error: 0.0,
            mapper_death: 0.0,
            accel_fault: 0.0,
            spill_corruption: 0.0,
            exec_crash: 0.0,
            node_failure: 0.0,
            task_failure: 0.0,
            max_retries: 4,
            backoff_ns: 50_000.0,
            timeout_ns: 1_000_000.0,
        }
    }

    /// Every fault class at the same `rate`, seeded.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            wire_corruption: rate,
            link_loss: rate,
            disk_read_error: rate,
            mapper_death: rate,
            accel_fault: rate,
            spill_corruption: rate,
            exec_crash: rate,
            node_failure: rate,
            task_failure: rate,
            ..FaultConfig::none()
        }
    }

    /// Whether any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.wire_corruption > 0.0
            || self.link_loss > 0.0
            || self.disk_read_error > 0.0
            || self.mapper_death > 0.0
            || self.accel_fault > 0.0
            || self.spill_corruption > 0.0
            || self.exec_crash > 0.0
            || self.node_failure > 0.0
            || self.task_failure > 0.0
    }

    /// The injector stream for a stable entity id.
    pub fn scoped(&self, scope: u64) -> FaultInjector {
        FaultInjector::scoped(*self, scope)
    }
}

/// One seeded fault stream. Each injector owns an independent PRNG
/// stream, so the draw order within a scope is fixed and scopes never
/// interfere — the foundation of thread-count invariance.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng,
}

/// Mixes the scope into the seed (SplitMix64 finalizer) so neighboring
/// scope ids land in unrelated stream states.
fn mix(seed: u64, scope: u64) -> u64 {
    let mut z = seed ^ scope.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// The injector stream for `(cfg.seed, scope)`.
    pub fn scoped(cfg: FaultConfig, scope: u64) -> Self {
        FaultInjector {
            rng: Rng::new(mix(cfg.seed, scope)),
            cfg,
        }
    }

    /// The configuration behind this stream.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether the next wire transfer is corrupted.
    pub fn corrupt_wire(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.wire_corruption)
    }

    /// Whether the next wire transfer is lost.
    pub fn lose_message(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.link_loss)
    }

    /// Whether the next disk read errors.
    pub fn disk_read_fails(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.disk_read_error)
    }

    /// Whether the next spill reload comes back corrupted.
    pub fn corrupt_spill(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.spill_corruption)
    }

    /// Whether the next accelerator request faults.
    pub fn accel_faults(&mut self) -> bool {
        self.rng.gen_bool(self.cfg.accel_fault)
    }

    /// Whether this mapper dies, and if so at which fraction of its map
    /// work (in `(0, 1)`); the task re-executes from scratch after the
    /// death point.
    pub fn mapper_dies(&mut self) -> Option<f64> {
        if self.rng.gen_bool(self.cfg.mapper_death) {
            // Never exactly 0 or 1: the death interrupts real progress.
            Some(self.rng.gen_range_f64(0.05, 0.95))
        } else {
            None
        }
    }

    /// Whether the executor behind this stream crashes during the
    /// attempt just dispatched, and if so at which interior fraction of
    /// the attempt's service the machine stops.
    pub fn exec_crashes(&mut self) -> Option<f64> {
        if self.rng.gen_bool(self.cfg.exec_crash) {
            Some(self.rng.gen_range_f64(0.05, 0.95))
        } else {
            None
        }
    }

    /// Whether the node behind this stream fails during the attempt
    /// just dispatched on one of its executors, and if so at which
    /// interior fraction of that attempt's service.
    pub fn node_fails(&mut self) -> Option<f64> {
        if self.rng.gen_bool(self.cfg.node_failure) {
            Some(self.rng.gen_range_f64(0.05, 0.95))
        } else {
            None
        }
    }

    /// Whether the attempt just dispatched fails (without killing its
    /// executor), and if so at which interior fraction of its service.
    pub fn task_fails(&mut self) -> Option<f64> {
        if self.rng.gen_bool(self.cfg.task_failure) {
            Some(self.rng.gen_range_f64(0.05, 0.95))
        } else {
            None
        }
    }

    /// A seeded uniform draw in `[0, 1)` — cooldown/backoff jitter that
    /// stays on this scope's deterministic stream.
    pub fn jitter(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// A deterministic single-byte corruption for a `len`-byte payload:
    /// `(position, xor mask)` with a non-zero mask, so the byte always
    /// changes.
    pub fn corrupt_byte(&mut self, len: usize) -> (usize, u8) {
        debug_assert!(len > 0, "cannot corrupt an empty payload");
        let pos = self.rng.gen_range_usize(0, len);
        let mask = self.rng.gen_range_u64(1, 256) as u8;
        (pos, mask)
    }

    /// Exponential backoff before retry attempt `k` (0-based).
    pub fn backoff_ns(&self, k: u32) -> f64 {
        self.cfg.backoff_ns * f64::from(1u32 << k.min(16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fire() {
        let mut inj = FaultConfig::none().scoped(7);
        for _ in 0..1000 {
            assert!(!inj.corrupt_wire());
            assert!(!inj.lose_message());
            assert!(!inj.disk_read_fails());
            assert!(!inj.corrupt_spill());
            assert!(!inj.accel_faults());
            assert!(inj.mapper_dies().is_none());
        }
    }

    #[test]
    fn scoped_streams_are_deterministic_and_independent() {
        let cfg = FaultConfig::uniform(0.5, 42);
        let a: Vec<bool> = {
            let mut i = cfg.scoped(3);
            (0..64).map(|_| i.corrupt_wire()).collect()
        };
        let b: Vec<bool> = {
            let mut i = cfg.scoped(3);
            (0..64).map(|_| i.corrupt_wire()).collect()
        };
        assert_eq!(a, b, "same scope replays the same schedule");
        let c: Vec<bool> = {
            let mut i = cfg.scoped(4);
            (0..64).map(|_| i.corrupt_wire()).collect()
        };
        assert_ne!(a, c, "different scopes draw different schedules");
    }

    #[test]
    fn rates_track_probability() {
        let cfg = FaultConfig::uniform(0.25, 9);
        let mut inj = cfg.scoped(0);
        let hits = (0..10_000).filter(|_| inj.lose_message()).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn corrupt_byte_changes_the_payload() {
        let mut inj = FaultConfig::uniform(1.0, 1).scoped(5);
        for len in [1usize, 2, 64, 4096] {
            let (pos, mask) = inj.corrupt_byte(len);
            assert!(pos < len);
            assert_ne!(mask, 0, "xor mask must flip at least one bit");
        }
    }

    #[test]
    fn death_fraction_is_interior() {
        let mut inj = FaultConfig::uniform(1.0, 2).scoped(0);
        for _ in 0..100 {
            let f = inj.mapper_dies().expect("rate 1 always fires");
            assert!(f > 0.0 && f < 1.0, "{f}");
        }
    }

    #[test]
    fn cluster_fault_draws_fire_and_stay_interior() {
        let mut zero = FaultConfig::none().scoped(11);
        for _ in 0..200 {
            assert!(zero.exec_crashes().is_none());
            assert!(zero.node_fails().is_none());
            assert!(zero.task_fails().is_none());
        }
        let mut hot = FaultConfig::uniform(1.0, 11).scoped(11);
        for _ in 0..200 {
            for f in [
                hot.exec_crashes().expect("rate 1 fires"),
                hot.node_fails().expect("rate 1 fires"),
                hot.task_fails().expect("rate 1 fires"),
            ] {
                assert!(f > 0.0 && f < 1.0, "{f}");
            }
            let j = hot.jitter();
            assert!((0.0..1.0).contains(&j), "{j}");
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let inj = FaultConfig::none().scoped(0);
        assert_eq!(inj.backoff_ns(1), 2.0 * inj.backoff_ns(0));
        assert_eq!(inj.backoff_ns(3), 8.0 * inj.backoff_ns(0));
    }
}
