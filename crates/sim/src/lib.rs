//! `sim` — the architecture-simulation substrate shared by the CPU
//! baselines and the Cereal accelerator model.
//!
//! * [`dram`] — the DDR4-2400 4-channel bandwidth/latency model of
//!   Table I; the single meter behind every bandwidth-utilization figure.
//! * [`cache`] — the host's three-level set-associative hierarchy
//!   (32 KB / 1 MB / 11 MB, LRU, write-back).
//! * [`cpu`] — a trace-driven CPU timing model that consumes the op
//!   streams emitted by the `serializers` crate and reproduces the §III
//!   bottleneck analysis (dependent-load serialization, window-limited
//!   MLP, reflection/hash pointer chases).
//! * [`mai`] — the accelerator's Memory Access Interface: 64-entry
//!   coalescing request CAM, reorder buffers, atomic RMW.
//! * [`tlb`] — the 128-entry, 1 GB-huge-page TLB.
//! * [`net`] — a point-to-point network link for end-to-end shuffle
//!   experiments.
//! * [`disk`] — a block device (seek + bandwidth ledger) for the block
//!   store's spill files.
//! * [`fault`] — the seeded fault injector (wire corruption, link loss,
//!   disk read errors, mapper death, accelerator faults) behind the
//!   recovery experiments.
//!
//! The `cereal` crate builds the SU/DU pipeline models on top of
//! [`mai`]+[`dram`]; the experiment harness builds the software baselines
//! on top of [`cpu`].

pub mod cache;
pub mod cpu;
pub mod disk;
pub mod dram;
pub mod fault;
pub mod mai;
pub mod net;
pub mod tlb;

pub use cache::{Cache, Hierarchy, HitLevel, LevelConfig};
pub use cpu::{Cpu, CpuConfig, CpuReport, OpCosts, OP_CLASS_NAMES};
pub use disk::{Disk, DiskConfig, DiskWindow};
pub use dram::{Dram, DramConfig};
pub use fault::{FaultConfig, FaultInjector};
pub use mai::{Mai, MaiConfig, MaiStats, ReorderBuffer};
pub use net::{Link, LinkConfig, NetWindow};
pub use tlb::{Tlb, TlbConfig};
