//! Memory Access Interface (MAI) — the accelerator's port to DRAM
//! (paper §V-A).
//!
//! The MAI is Cereal's substitute for a cache hierarchy: a 64-entry
//! associative structure tracking outstanding requests (Table I gives it
//! 4 KB capacity at a 32 B block size). It provides:
//!
//! * **request coalescing** "as in conventional MSHRs": a request to a
//!   block with an in-flight fetch rides the existing entry instead of
//!   issuing a duplicate DRAM transaction — this is what keeps repeated
//!   type-descriptor fetches from multiplying metadata traffic;
//! * a bounded number of outstanding requests — when all 64 entries are
//!   busy, a new request stalls until the earliest completes;
//! * **reorder buffers** so requesters that need in-order data (the
//!   object handler's reference stream) observe responses in request
//!   order ([`ReorderBuffer`]);
//! * **atomic read-modify-write** within the accelerator
//!   ([`Mai::atomic_rmw`]), used for header updates without races.

use crate::dram::Dram;

/// MAI configuration (Table I).
#[derive(Clone, Copy, Debug)]
pub struct MaiConfig {
    /// Outstanding-request entries.
    pub entries: usize,
    /// Tracking block size in bytes.
    pub block_bytes: u64,
}

impl Default for MaiConfig {
    fn default() -> Self {
        MaiConfig {
            entries: 64,
            block_bytes: 32,
        }
    }
}

/// Aggregate MAI statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaiStats {
    /// Block requests seen.
    pub requests: u64,
    /// Requests satisfied by an in-flight entry.
    pub coalesced: u64,
    /// Requests that stalled for a free entry.
    pub stalls: u64,
    /// Atomic read-modify-writes performed.
    pub rmws: u64,
}

/// The MAI model.
///
/// ```
/// use sim::{Mai, Dram};
/// let mut mai = Mai::default();
/// let mut dram = Dram::default();
/// let a = mai.read(&mut dram, 0x1000, 8, 0.0);
/// let b = mai.read(&mut dram, 0x1008, 8, 0.0); // same 32 B block
/// assert_eq!(a, b, "coalesced with the in-flight fetch");
/// assert_eq!(dram.reads(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Mai {
    cfg: MaiConfig,
    /// (block address, completion time) of in-flight reads.
    outstanding: Vec<(u64, f64)>,
    stats: MaiStats,
}

impl Mai {
    /// An MAI with the given configuration.
    pub fn new(cfg: MaiConfig) -> Self {
        Mai {
            cfg,
            outstanding: Vec::with_capacity(cfg.entries),
            stats: MaiStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MaiStats {
        self.stats
    }

    fn prune(&mut self, now_ns: f64) {
        self.outstanding.retain(|&(_, done)| done > now_ns);
    }

    /// Issues a read of `[addr, addr+bytes)` at `now_ns`; returns the time
    /// all covered blocks are available. Coalesces with in-flight blocks
    /// and stalls when the entry CAM is full.
    pub fn read(&mut self, dram: &mut Dram, addr: u64, bytes: u64, now_ns: f64) -> f64 {
        debug_assert!(bytes > 0);
        let bb = self.cfg.block_bytes;
        let first = addr / bb;
        let last = (addr + bytes - 1) / bb;
        let mut now = now_ns;
        let mut done_all = now_ns;
        for block in first..=last {
            self.stats.requests += 1;
            self.prune(now);
            if let Some(&(_, done)) = self.outstanding.iter().find(|&&(b, _)| b == block) {
                self.stats.coalesced += 1;
                done_all = done_all.max(done);
                continue;
            }
            if self.outstanding.len() >= self.cfg.entries {
                self.stats.stalls += 1;
                let earliest = self
                    .outstanding
                    .iter()
                    .map(|&(_, d)| d)
                    .fold(f64::INFINITY, f64::min);
                now = now.max(earliest);
                self.prune(now);
            }
            let done = dram.read(block * bb, bb, now);
            self.outstanding.push((block, done));
            done_all = done_all.max(done);
        }
        done_all
    }

    /// Issues a write; writes are buffered (no entry held, no stall) but
    /// consume channel bandwidth. Returns drain time.
    pub fn write(&mut self, dram: &mut Dram, addr: u64, bytes: u64, now_ns: f64) -> f64 {
        dram.write(addr, bytes.max(1), now_ns)
    }

    /// Atomic read-modify-write of one block: the read and the write are
    /// serialized through the RMW buffer. Returns completion time.
    pub fn atomic_rmw(&mut self, dram: &mut Dram, addr: u64, now_ns: f64) -> f64 {
        self.stats.rmws += 1;
        let read_done = self.read(dram, addr, 8, now_ns);
        dram.write(addr, 8, read_done)
    }
}

impl Default for Mai {
    fn default() -> Self {
        Mai::new(MaiConfig::default())
    }
}

/// In-order delivery helper: memory responses arrive out of order, but
/// some consumers (the object handler's reference stream) must observe
/// them in request order.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReorderBuffer {
    last_delivered: f64,
}

impl ReorderBuffer {
    /// A fresh reorder buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers a response that completed at `done_ns`, returning the time
    /// it is visible in order (never before an earlier request's data).
    pub fn deliver(&mut self, done_ns: f64) -> f64 {
        self.last_delivered = self.last_delivered.max(done_ns);
        self.last_delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_same_block() {
        let mut mai = Mai::default();
        let mut dram = Dram::default();
        let a = mai.read(&mut dram, 0x1000, 8, 0.0);
        let b = mai.read(&mut dram, 0x1008, 8, 0.0); // same 32 B block
        assert_eq!(a, b, "second request coalesces");
        assert_eq!(mai.stats().coalesced, 1);
        assert_eq!(dram.reads(), 1, "only one DRAM transaction");
    }

    #[test]
    fn distinct_blocks_issue_separately() {
        let mut mai = Mai::default();
        let mut dram = Dram::default();
        mai.read(&mut dram, 0x1000, 8, 0.0);
        mai.read(&mut dram, 0x1020, 8, 0.0);
        assert_eq!(dram.reads(), 2);
        assert_eq!(mai.stats().coalesced, 0);
    }

    #[test]
    fn spanning_request_touches_all_blocks() {
        let mut mai = Mai::default();
        let mut dram = Dram::default();
        mai.read(&mut dram, 0x1000, 128, 0.0); // 4 × 32 B blocks
        assert_eq!(dram.reads(), 4);
        assert_eq!(mai.stats().requests, 4);
    }

    #[test]
    fn full_cam_stalls() {
        let mut mai = Mai::new(MaiConfig {
            entries: 2,
            block_bytes: 32,
        });
        let mut dram = Dram::default();
        let d1 = mai.read(&mut dram, 0x0, 8, 0.0);
        let _d2 = mai.read(&mut dram, 0x20, 8, 0.0);
        // Third distinct block with both entries busy: must stall to ≥ the
        // earliest completion.
        let d3 = mai.read(&mut dram, 0x40, 8, 0.0);
        assert!(d3 >= d1);
        assert_eq!(mai.stats().stalls, 1);
    }

    #[test]
    fn entries_free_after_completion() {
        let mut mai = Mai::new(MaiConfig {
            entries: 1,
            block_bytes: 32,
        });
        let mut dram = Dram::default();
        let d1 = mai.read(&mut dram, 0x0, 8, 0.0);
        // Issue after the first completed: no stall.
        mai.read(&mut dram, 0x20, 8, d1 + 1.0);
        assert_eq!(mai.stats().stalls, 0);
    }

    #[test]
    fn rmw_serializes_read_then_write() {
        let mut mai = Mai::default();
        let mut dram = Dram::default();
        let done = mai.atomic_rmw(&mut dram, 0x100, 0.0);
        // Must exceed a single read's completion (write after read).
        let mut dram2 = Dram::default();
        let mut mai2 = Mai::default();
        let read_only = mai2.read(&mut dram2, 0x100, 8, 0.0);
        assert!(done > read_only);
        assert_eq!(mai.stats().rmws, 1);
    }

    #[test]
    fn reorder_buffer_enforces_order() {
        let mut rob = ReorderBuffer::new();
        assert_eq!(rob.deliver(100.0), 100.0);
        // A later request that completed earlier is held back.
        assert_eq!(rob.deliver(60.0), 100.0);
        assert_eq!(rob.deliver(140.0), 140.0);
    }
}
