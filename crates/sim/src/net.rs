//! Network link model for inter-node transfers.
//!
//! S/D exists to feed the network (paper §I: shuffles, RPC). This model
//! provides the missing third stage for end-to-end shuffle experiments:
//! a full-duplex point-to-point link with finite bandwidth and a
//! per-message latency, using the same order-insensitive time-bucket
//! ledger as [`crate::dram`] so senders simulated sequentially overlap
//! correctly.

/// Link configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Bandwidth in bytes per nanosecond (10 GbE ≈ 1.25 B/ns).
    pub bytes_per_ns: f64,
    /// One-way message latency in nanoseconds (NIC + switch + stack).
    pub latency_ns: f64,
}

impl LinkConfig {
    /// 10 Gb Ethernet with a ~10 µs one-way latency.
    pub fn ten_gbe() -> Self {
        LinkConfig {
            bytes_per_ns: 1.25,
            latency_ns: 10_000.0,
        }
    }

    /// 40 Gb Ethernet.
    pub fn forty_gbe() -> Self {
        LinkConfig {
            bytes_per_ns: 5.0,
            latency_ns: 8_000.0,
        }
    }

    /// 100 Gb Ethernet.
    pub fn hundred_gbe() -> Self {
        LinkConfig {
            bytes_per_ns: 12.5,
            latency_ns: 6_000.0,
        }
    }
}

/// Bucket granularity for the capacity ledger (coarser than DRAM's: the
/// latencies are µs-scale).
const BUCKET_NS: f64 = 1000.0;

/// A point-to-point link.
#[derive(Clone, Debug)]
pub struct Link {
    cfg: LinkConfig,
    ledger: std::collections::HashMap<u64, f64>,
    total_bytes: u64,
    messages: u64,
}

impl Link {
    /// A link with the given configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            ledger: std::collections::HashMap::new(),
            total_bytes: 0,
            messages: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Transmits `bytes` starting at `now_ns`; returns the arrival time
    /// of the last byte at the receiver.
    ///
    /// A zero-byte send (an empty partition's flush) is well-defined:
    /// it pays only the one-way latency and charges nothing to the
    /// bandwidth ledger.
    pub fn send(&mut self, bytes: u64, now_ns: f64) -> f64 {
        if bytes == 0 {
            self.messages += 1;
            return now_ns.max(0.0) + self.cfg.latency_ns;
        }
        let cap = BUCKET_NS * self.cfg.bytes_per_ns;
        let mut bucket = (now_ns.max(0.0) / BUCKET_NS) as u64;
        let mut left = bytes as f64;
        let finish;
        loop {
            let used = self.ledger.entry(bucket).or_insert(0.0);
            let free = cap - *used;
            if free >= left {
                *used += left;
                finish = bucket as f64 * BUCKET_NS + *used / self.cfg.bytes_per_ns;
                break;
            }
            left -= free;
            *used = cap;
            bucket += 1;
        }
        self.total_bytes += bytes;
        self.messages += 1;
        let service = bytes as f64 / self.cfg.bytes_per_ns;
        finish.max(now_ns + service) + self.cfg.latency_ns
    }

    /// Bytes transmitted.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Messages transmitted.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Fraction of link bandwidth used over `elapsed_ns`.
    pub fn utilization(&self, elapsed_ns: f64) -> f64 {
        telemetry::ratio(
            self.total_bytes as f64,
            elapsed_ns * self.cfg.bytes_per_ns,
        )
    }
}

/// One message's three-hop transit on the fabric — what the telemetry
/// exporter renders as NIC busy windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetWindow {
    /// Sending endpoint.
    pub src: usize,
    /// Receiving endpoint.
    pub dst: usize,
    /// Bytes carried.
    pub bytes: u64,
    /// When the sender started transmitting.
    pub start_ns: f64,
    /// When the sender's egress NIC drained the message.
    pub egress_done_ns: f64,
    /// When the pair link delivered the last byte.
    pub wire_done_ns: f64,
    /// When the receiver's ingress NIC accepted the last byte.
    pub arrival_ns: f64,
}

/// A full-mesh fabric of point-to-point links with per-endpoint fan-out
/// and fan-in capacity.
///
/// A shuffle is an all-to-all transfer: every mapper sends to every
/// reducer. Modeling only per-pair links would give the fabric N×M times
/// the bandwidth of any real cluster, so each message crosses three
/// store-and-forward hops, every one its own time-bucket ledger:
///
/// 1. the sender's **egress NIC** (latency-free [`Link`]), shared by all
///    of that sender's flows — the fan-out bottleneck;
/// 2. the **pair link**, which carries the configured one-way latency;
/// 3. the receiver's **ingress NIC** (latency-free), shared by all of
///    that receiver's flows — the fan-in bottleneck.
///
/// All three ledgers run at the configured bandwidth, so an uncontended
/// message pays roughly three service times plus the latency; under
/// incast the ingress hop dominates, exactly the behaviour end-to-end
/// shuffle experiments need.
///
/// Pair-link state is **lazy**: a link's ledger materializes on its
/// first message, so a 1000-endpoint mesh (a million logical pairs —
/// cluster-scale experiments) costs memory only for the pairs that
/// actually carry traffic. An untouched pair still reads as a valid,
/// idle link through [`Fabric::pair`].
#[derive(Clone, Debug)]
pub struct Fabric {
    cfg: LinkConfig,
    senders: usize,
    receivers: usize,
    /// Pair links keyed by `src * receivers + dst`, created on first
    /// send. Aggregate counters come from the egress NICs, so this map
    /// is never iterated — ordering is irrelevant.
    pairs: std::collections::HashMap<usize, Link>,
    /// What an untouched pair looks like: an idle link.
    idle_pair: Link,
    egress: Vec<Link>,
    ingress: Vec<Link>,
    /// Transit tape, recorded only when telemetry asks for it.
    tape: Option<Vec<NetWindow>>,
}

impl Fabric {
    /// A full mesh between `senders` and `receivers` endpoints.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn full_mesh(senders: usize, receivers: usize, cfg: LinkConfig) -> Self {
        assert!(senders > 0 && receivers > 0, "fabric needs endpoints");
        let nic = LinkConfig {
            bytes_per_ns: cfg.bytes_per_ns,
            latency_ns: 0.0,
        };
        Fabric {
            cfg,
            senders,
            receivers,
            pairs: std::collections::HashMap::new(),
            idle_pair: Link::new(cfg),
            egress: vec![Link::new(nic); senders],
            ingress: vec![Link::new(nic); receivers],
            tape: None,
        }
    }

    /// Starts recording one [`NetWindow`] per message. Off by default —
    /// the hot path pays one `Option` check.
    pub fn record_tape(&mut self) {
        self.tape.get_or_insert_with(Vec::new);
    }

    /// Drains the recorded transit windows (empty unless
    /// [`Fabric::record_tape`] was called).
    pub fn take_tape(&mut self) -> Vec<NetWindow> {
        self.tape.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The pair-link configuration.
    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Sends `bytes` from `src` to `dst` starting at `now_ns`; returns
    /// the arrival time of the last byte after all three hops.
    ///
    /// # Panics
    /// Panics if `src`/`dst` are out of range (debug builds index-check).
    pub fn send(&mut self, src: usize, dst: usize, bytes: u64, now_ns: f64) -> f64 {
        assert!(src < self.senders && dst < self.receivers, "endpoint out of range");
        let out = self.egress[src].send(bytes, now_ns);
        let cfg = self.cfg;
        let wire = self
            .pairs
            .entry(src * self.receivers + dst)
            .or_insert_with(|| Link::new(cfg))
            .send(bytes, out);
        let arrival = self.ingress[dst].send(bytes, wire);
        if let Some(tape) = &mut self.tape {
            tape.push(NetWindow {
                src,
                dst,
                bytes,
                start_ns: now_ns.max(0.0),
                egress_done_ns: out,
                wire_done_ns: wire,
                arrival_ns: arrival,
            });
        }
        arrival
    }

    /// The point-to-point link between `src` and `dst`. A pair that has
    /// never carried a message reads as an idle link (zero bytes, zero
    /// messages) without materializing any state.
    pub fn pair(&self, src: usize, dst: usize) -> &Link {
        assert!(src < self.senders && dst < self.receivers, "endpoint out of range");
        self.pairs
            .get(&(src * self.receivers + dst))
            .unwrap_or(&self.idle_pair)
    }

    /// How many pair links have materialized ledgers — the lazy mesh's
    /// actual footprint, as opposed to the `senders × receivers`
    /// logical pairs.
    pub fn materialized_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total bytes crossing the fabric (counted once per message).
    pub fn total_bytes(&self) -> u64 {
        self.egress.iter().map(Link::total_bytes).sum()
    }

    /// Messages sent across the fabric.
    pub fn messages(&self) -> u64 {
        self.egress.iter().map(Link::messages).sum()
    }

    /// Fraction of aggregate ingress bandwidth used over `elapsed_ns` —
    /// the utilization figure that matters under fan-in.
    pub fn ingress_utilization(&self, elapsed_ns: f64) -> f64 {
        let cap = self.cfg.bytes_per_ns * self.ingress.len() as f64;
        telemetry::ratio(self.total_bytes() as f64, elapsed_ns * cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_service_apply() {
        let mut l = Link::new(LinkConfig::ten_gbe());
        let done = l.send(1250, 0.0); // 1 µs of service
        assert!(done >= 1000.0 + 10_000.0 - 1.0, "got {done}");
    }

    #[test]
    fn bandwidth_saturates() {
        let mut l = Link::new(LinkConfig::ten_gbe());
        let mut last = 0.0f64;
        // 10 MB sent as fast as possible.
        for i in 0..100 {
            last = last.max(l.send(100_000, i as f64));
        }
        let util = l.utilization(last);
        assert!(util > 0.5, "util {util}");
        assert!(util <= 1.0 + 1e-9);
    }

    #[test]
    fn faster_links_finish_sooner() {
        let mut slow = Link::new(LinkConfig::ten_gbe());
        let mut fast = Link::new(LinkConfig::hundred_gbe());
        let a = slow.send(10 << 20, 0.0);
        let b = fast.send(10 << 20, 0.0);
        assert!(b < a / 4.0, "100GbE {b} vs 10GbE {a}");
    }

    #[test]
    fn counters() {
        let mut l = Link::new(LinkConfig::forty_gbe());
        l.send(100, 0.0);
        l.send(200, 50.0);
        assert_eq!(l.total_bytes(), 300);
        assert_eq!(l.messages(), 2);
    }

    #[test]
    fn fabric_tape_records_hops_in_order() {
        let mut f = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
        f.send(0, 1, 100, 0.0);
        assert!(f.take_tape().is_empty(), "tape off by default");
        f.record_tape();
        let arrival = f.send(1, 0, 2500, 5.0);
        let t = f.take_tape();
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].src, t[0].dst, t[0].bytes), (1, 0, 2500));
        assert_eq!(t[0].start_ns, 5.0);
        assert!(t[0].start_ns < t[0].egress_done_ns);
        assert!(t[0].egress_done_ns < t[0].wire_done_ns);
        assert!(t[0].wire_done_ns < t[0].arrival_ns);
        assert_eq!(t[0].arrival_ns, arrival);
    }

    #[test]
    fn empty_send_is_latency_only() {
        let mut l = Link::new(LinkConfig::ten_gbe());
        let done = l.send(0, 500.0);
        assert_eq!(done, 500.0 + l.config().latency_ns);
        assert_eq!(l.total_bytes(), 0, "no ledger charge for empty sends");
        assert_eq!(l.messages(), 1);
        // The ledger is untouched: a following full-bucket send is not
        // delayed by the empty one.
        let mut fresh = Link::new(LinkConfig::ten_gbe());
        assert_eq!(l.send(1250, 0.0), fresh.send(1250, 0.0));
        // And a fabric hop composes empty sends end to end.
        let mut f = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
        let arrival = f.send(0, 1, 0, 0.0);
        assert_eq!(arrival, LinkConfig::ten_gbe().latency_ns);
    }
}
