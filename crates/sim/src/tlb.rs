//! Accelerator TLB model (paper §V-E, Table I).
//!
//! Cereal assumes 1 GB huge pages and carries a 128-entry TLB; the
//! paper's 128 GB prototype therefore never misses. The model still
//! implements LRU replacement and a page-walk penalty so larger
//! address-space experiments exercise the miss path.

/// TLB configuration.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size as a power of two (30 → 1 GB huge pages).
    pub page_bits: u32,
    /// Page-walk latency in nanoseconds on a miss.
    pub walk_ns: f64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 128,
            page_bits: 30,
            walk_ns: 100.0,
        }
    }
}

/// A fully-associative LRU TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// (page number, last-use tick).
    slots: Vec<(u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// A TLB with the given configuration.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            cfg,
            slots: Vec::with_capacity(cfg.entries),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`, returning the extra latency in nanoseconds
    /// (0 on a hit, one page walk on a miss).
    pub fn translate(&mut self, addr: u64) -> f64 {
        self.tick += 1;
        let page = addr >> self.cfg.page_bits;
        if let Some(slot) = self.slots.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.tick;
            self.hits += 1;
            return 0.0;
        }
        self.misses += 1;
        if self.slots.len() >= self.cfg.entries {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.slots.swap_remove(victim);
        }
        self.slots.push((page, self.tick));
        self.cfg.walk_ns
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new(TlbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut tlb = Tlb::default();
        assert!(tlb.translate(0x4000_0000) > 0.0);
        assert_eq!(tlb.translate(0x4000_0000), 0.0);
        assert_eq!(tlb.translate(0x4fff_ffff), 0.0, "same 1 GB page");
        assert_eq!(tlb.hits(), 2);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn whole_prototype_fits() {
        // 128 GB of huge pages = 128 entries: no capacity misses.
        let mut tlb = Tlb::default();
        for page in 0..128u64 {
            tlb.translate(page << 30);
        }
        for page in 0..128u64 {
            assert_eq!(tlb.translate(page << 30), 0.0);
        }
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            page_bits: 30,
            walk_ns: 100.0,
        });
        tlb.translate(0 << 30);
        tlb.translate(1 << 30);
        tlb.translate(0 << 30); // refresh page 0
        tlb.translate(2 << 30); // evicts page 1
        assert_eq!(tlb.translate(0 << 30), 0.0);
        assert!(tlb.translate(1 << 30) > 0.0);
    }
}
