//! Cross-crate validation: running the functional serializers through the
//! CPU model must reproduce the paper's §III observations (Fig. 3):
//! low IPC, high LLC miss rates, single-digit bandwidth utilization, and
//! Kryo ≈ 2–5× faster than Java S/D on serialization but an order of
//! magnitude faster on deserialization.

use sdheap::builder::Init;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{JavaSd, Kryo, Serializer};
use sim::{Cpu, CpuReport};

/// A binary tree of `depth` levels (2^depth - 1 nodes).
fn tree(depth: u32) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 26);
    let node = b.klass(
        "TreeNode",
        vec![
            FieldKind::Value(ValueType::Long),
            FieldKind::Ref,
            FieldKind::Ref,
        ],
    );
    fn build(b: &mut GraphBuilder, node: sdheap::KlassId, depth: u32, seed: u64) -> Addr {
        if depth == 0 {
            return Addr::NULL;
        }
        let l = build(b, node, depth - 1, seed * 2);
        let r = build(b, node, depth - 1, seed * 2 + 1);
        b.object(
            node,
            &[
                Init::Val(seed),
                if l.is_null() { Init::Null } else { Init::Ref(l) },
                if r.is_null() { Init::Null } else { Init::Ref(r) },
            ],
        )
        .unwrap()
    }
    let root = build(&mut b, node, depth, 1);
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

fn measure(ser: &dyn Serializer, heap: &mut Heap, reg: &KlassRegistry, root: Addr) -> (CpuReport, CpuReport) {
    let mut ser_cpu = Cpu::host();
    let bytes = ser.serialize(heap, reg, root, &mut ser_cpu).unwrap();
    let mut de_cpu = Cpu::host();
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
    ser.deserialize(&bytes, reg, &mut dst, &mut de_cpu).unwrap();
    (ser_cpu.report(), de_cpu.report())
}

#[test]
fn fig3_shapes_hold_on_a_tree() {
    let (mut heap, reg, root) = tree(14); // 16383 nodes, ~786 KB
    let (java_ser, java_de) = measure(&JavaSd::new(), &mut heap, &reg, root);
    let (kryo_ser, kryo_de) = measure(&Kryo::new(), &mut heap, &reg, root);

    // Fig. 3(a): IPC around 1 for both (well below the 4-wide peak).
    for (name, r) in [("java ser", java_ser), ("kryo ser", kryo_ser)] {
        assert!(
            r.ipc > 0.2 && r.ipc < 2.5,
            "{name}: S/D should be latency-bound, IPC {} cycles {}",
            r.ipc,
            r.cycles
        );
    }

    // Fig. 3(c): single-core S/D uses a small fraction of DRAM bandwidth.
    assert!(
        java_ser.bandwidth_util < 0.15,
        "java bw util {}",
        java_ser.bandwidth_util
    );
    assert!(
        kryo_ser.bandwidth_util < 0.2,
        "kryo bw util {}",
        kryo_ser.bandwidth_util
    );

    // Fig. 3(d): Kryo beats Java S/D moderately on serialization...
    let ser_speedup = java_ser.ns / kryo_ser.ns;
    assert!(
        ser_speedup > 1.3 && ser_speedup < 8.0,
        "kryo ser speedup {ser_speedup}"
    );
    // ...and dramatically on deserialization (no strings, no reflection).
    let de_speedup = java_de.ns / kryo_de.ns;
    assert!(
        de_speedup > 8.0,
        "kryo deser speedup should be an order of magnitude, got {de_speedup}"
    );
    assert!(de_speedup > ser_speedup * 2.0);
}

#[test]
fn larger_graphs_take_proportionally_longer() {
    let (mut h1, r1, root1) = tree(10);
    let (mut h2, r2, root2) = tree(13); // 8× the nodes
    let (a, _) = measure(&Kryo::new(), &mut h1, &r1, root1);
    let (b, _) = measure(&Kryo::new(), &mut h2, &r2, root2);
    let ratio = b.ns / a.ns;
    assert!(
        ratio > 4.0 && ratio < 20.0,
        "8× nodes should cost roughly 8× time, got {ratio}"
    );
}
