//! Diagnostic: print the modeled Fig. 3 numbers (run with --nocapture).
use sdheap::builder::Init;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use serializers::{JavaSd, Kryo, Serializer, Skyway};
use sim::Cpu;

fn tree(depth: u32) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 26);
    let node = b.klass("TreeNode", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref]);
    fn build(b: &mut GraphBuilder, node: sdheap::KlassId, depth: u32, seed: u64) -> Addr {
        if depth == 0 { return Addr::NULL; }
        let l = build(b, node, depth - 1, seed * 2);
        let r = build(b, node, depth - 1, seed * 2 + 1);
        b.object(node, &[Init::Val(seed),
            if l.is_null() { Init::Null } else { Init::Ref(l) },
            if r.is_null() { Init::Null } else { Init::Ref(r) }]).unwrap()
    }
    let root = build(&mut b, node, depth, 1);
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

#[test]
fn print_numbers() {
    let (mut heap, reg, root) = tree(15);
    let n = 32767.0;
    for ser in [&JavaSd::new() as &dyn Serializer, &Kryo::new(), &Skyway::new()] {
        let mut c = Cpu::host();
        let bytes = ser.serialize(&mut heap, &reg, root, &mut c).unwrap();
        let rs = c.report();
        let mut d = Cpu::host();
        let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
        ser.deserialize(&bytes, &reg, &mut dst, &mut d).unwrap();
        let rd = d.report();
        println!("{:8} ser: {:8.1}ns/obj ipc={:.2} llc_mr={:.2} bw={:.2}% | de: {:8.1}ns/obj ipc={:.2} bw={:.2}% | size={}KB",
            ser.name(), rs.ns/n, rs.ipc, rs.llc_miss_rate, rs.bandwidth_util*100.0,
            rd.ns/n, rd.ipc, rd.bandwidth_util*100.0, bytes.len()/1024);
    }
}
