//! Direct tests for the network link model (`sim::net`): ledger overlap
//! between senders sharing a time window, latency accounting, golden
//! total-time values for every `LinkConfig` preset, and the `Fabric`
//! fan-in/fan-out helpers.

use sim::net::Fabric;
use sim::{Link, LinkConfig};

/// All arithmetic below is exact in binary floating point: the preset
/// bandwidths (1.25, 5, 12.5 B/ns) and the byte counts chosen divide
/// without rounding, so golden values compare with `==`.

#[test]
fn golden_total_time_ten_gbe() {
    // 1250 B at 1.25 B/ns = 1000 ns service + 10 µs latency.
    let mut l = Link::new(LinkConfig::ten_gbe());
    assert_eq!(l.send(1250, 0.0), 11_000.0);
}

#[test]
fn golden_total_time_forty_gbe() {
    // 5000 B at 5 B/ns = 1000 ns service + 8 µs latency.
    let mut l = Link::new(LinkConfig::forty_gbe());
    assert_eq!(l.send(5000, 0.0), 9_000.0);
}

#[test]
fn golden_total_time_hundred_gbe() {
    // 12500 B at 12.5 B/ns = 1000 ns service + 6 µs latency.
    let mut l = Link::new(LinkConfig::hundred_gbe());
    assert_eq!(l.send(12_500, 0.0), 7_000.0);
}

#[test]
fn ledger_overlap_two_senders_share_a_window() {
    // Sender A takes half of bucket 0; sender B's message no longer fits
    // the remainder and spills into bucket 1: the ledger makes
    // sequentially simulated senders contend as if concurrent.
    let mut l = Link::new(LinkConfig::ten_gbe());
    let a = l.send(625, 0.0); // 500 ns of the 1250 B bucket
    assert_eq!(a, 10_500.0);
    let b = l.send(1250, 0.0); // 625 B left in bucket 0, 625 B into bucket 1
    assert_eq!(b, 11_500.0, "second sender pushed a full bucket later");

    // An uncontended link would have finished at 11 000 ns.
    let mut fresh = Link::new(LinkConfig::ten_gbe());
    assert_eq!(fresh.send(1250, 0.0), 11_000.0);
}

#[test]
fn ledger_overlap_is_order_insensitive_for_totals() {
    // The bucket ledger is a capacity meter: total occupancy (and thus
    // the last finisher) does not depend on issue order within a window.
    let mut ab = Link::new(LinkConfig::forty_gbe());
    let last_ab = ab.send(4000, 0.0).max(ab.send(6000, 0.0));
    let mut ba = Link::new(LinkConfig::forty_gbe());
    let last_ba = ba.send(6000, 0.0).max(ba.send(4000, 0.0));
    assert_eq!(last_ab, last_ba);
    assert_eq!(ab.total_bytes(), ba.total_bytes());
}

#[test]
fn latency_accounts_once_per_message() {
    // Two configs differing only in latency differ by exactly that
    // delta, for any message size.
    for bytes in [1u64, 640, 12_500, 1 << 20] {
        let base = LinkConfig {
            bytes_per_ns: 12.5,
            latency_ns: 0.0,
        };
        let lat = LinkConfig {
            bytes_per_ns: 12.5,
            latency_ns: 6_000.0,
        };
        let t0 = Link::new(base).send(bytes, 0.0);
        let t1 = Link::new(lat).send(bytes, 0.0);
        assert_eq!(t1 - t0, 6_000.0, "{bytes} B");
    }
}

#[test]
fn latency_applies_after_service_of_the_last_byte() {
    // A message far larger than one bucket: arrival = service + latency.
    let cfg = LinkConfig::ten_gbe();
    let mut l = Link::new(cfg);
    let bytes = 10u64 << 20;
    let arrival = l.send(bytes, 0.0);
    let service = bytes as f64 / cfg.bytes_per_ns;
    assert!((arrival - (service + cfg.latency_ns)).abs() < 1.0, "got {arrival}");
}

#[test]
fn presets_order_by_speed() {
    let t10 = Link::new(LinkConfig::ten_gbe()).send(1 << 20, 0.0);
    let t40 = Link::new(LinkConfig::forty_gbe()).send(1 << 20, 0.0);
    let t100 = Link::new(LinkConfig::hundred_gbe()).send(1 << 20, 0.0);
    assert!(t10 > t40 && t40 > t100);
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

#[test]
fn fabric_uncontended_message_pays_three_hops() {
    let mut f = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
    // 1250 B: 1000 ns per hop (egress, pair, ingress) + 10 µs latency.
    assert_eq!(f.send(0, 1, 1250, 0.0), 13_000.0);
    assert_eq!(f.total_bytes(), 1250);
    assert_eq!(f.messages(), 1);
}

#[test]
fn fabric_fan_in_contends_at_the_receiver() {
    // Two senders to one receiver: the pair links are disjoint, but the
    // ingress NIC serializes the two messages.
    let mut incast = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
    let a = incast.send(0, 0, 1250, 0.0);
    let b = incast.send(1, 0, 1250, 0.0);
    let last_incast = a.max(b);

    // Same two messages to distinct receivers: no shared hop.
    let mut spread = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
    let c = spread.send(0, 0, 1250, 0.0);
    let d = spread.send(1, 1, 1250, 0.0);
    assert_eq!(c, d, "disjoint paths are symmetric");
    assert!(
        last_incast >= c.max(d) + 999.0,
        "fan-in must queue at the ingress NIC: {last_incast} vs {}",
        c.max(d)
    );
}

#[test]
fn fabric_fan_out_contends_at_the_sender() {
    let mut fanout = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
    let a = fanout.send(0, 0, 1250, 0.0);
    let b = fanout.send(0, 1, 1250, 0.0);
    assert!(
        b.max(a) >= a.min(b) + 999.0,
        "fan-out must queue at the egress NIC: {a} vs {b}"
    );
}

#[test]
fn fabric_pair_counters_and_utilization() {
    let mut f = Fabric::full_mesh(2, 3, LinkConfig::forty_gbe());
    let t1 = f.send(1, 2, 5000, 0.0);
    let t2 = f.send(1, 2, 5000, t1);
    assert_eq!(f.pair(1, 2).total_bytes(), 10_000);
    assert_eq!(f.pair(1, 2).messages(), 2);
    assert_eq!(f.pair(0, 0).messages(), 0);
    let util = f.ingress_utilization(t2);
    assert!(util > 0.0 && util <= 1.0, "util {util}");
}

#[test]
fn fabric_pair_links_materialize_lazily() {
    // A cluster-scale mesh: a million logical pairs must not allocate a
    // million ledgers up front. Only touched pairs materialize, and
    // untouched pairs still read as idle links.
    let mut f = Fabric::full_mesh(1000, 1000, LinkConfig::ten_gbe());
    assert_eq!(f.materialized_pairs(), 0, "construction allocates no pair links");
    let t1 = f.send(3, 997, 1250, 0.0);
    let t2 = f.send(3, 997, 1250, t1);
    f.send(500, 0, 1250, 0.0);
    assert_eq!(f.materialized_pairs(), 2, "one link per touched pair");
    assert_eq!(f.pair(3, 997).messages(), 2);
    assert_eq!(f.pair(3, 997).total_bytes(), 2500);
    assert_eq!(f.pair(0, 3).messages(), 0, "untouched pair reads as idle");
    assert_eq!(f.pair(999, 999).total_bytes(), 0);
    assert_eq!(f.messages(), 3);
    assert_eq!(f.total_bytes(), 3750);

    // Lazy materialization changes footprint only: arrival times match a
    // small eager-era mesh hop for hop.
    let mut small = Fabric::full_mesh(2, 2, LinkConfig::ten_gbe());
    let s1 = small.send(0, 1, 1250, 0.0);
    let s2 = small.send(0, 1, 1250, s1);
    assert_eq!(t1, s1);
    assert_eq!(t2, s2);
}
