//! Seeded randomized tests on the timing substrate: physical sanity
//! invariants that must hold for any access pattern.
//!
//! Formerly proptest properties; now deterministic loops over the
//! in-repo PRNG so the suite runs offline.

use sdheap::rng::Rng;
use serializers::{BufferedSink, Op, TraceSink};
use sim::{Cpu, Dram, DramConfig, Hierarchy, Mai, MaiConfig, ReorderBuffer, Tlb};

/// DRAM completions respect causality and service time; the byte meter
/// is exact; utilization never exceeds 1.
#[test]
fn dram_is_physical() {
    let mut rng = Rng::new(0x51_0001);
    for _ in 0..50 {
        let mut dram = Dram::new(DramConfig::default());
        let mut total = 0u64;
        let mut horizon: f64 = 0.0;
        for _ in 0..rng.gen_range_usize(1, 200) {
            let addr = rng.next_u64() & 0xffff_ffff;
            let bytes = rng.gen_range_u64(1, 4096);
            let now = rng.gen_range_f64(0.0, 100_000.0);
            let done = dram.read(addr, bytes, now);
            let service = bytes as f64 / 19.2;
            assert!(done >= now + service + 39.999, "done {done} < now {now} + service");
            total += bytes;
            horizon = horizon.max(done);
        }
        assert_eq!(dram.total_bytes(), total);
        assert!(dram.utilization(horizon) <= 1.0 + 1e-9);
    }
}

/// Issuing the same accesses later never makes them complete earlier.
#[test]
fn dram_is_monotone_in_time() {
    let mut rng = Rng::new(0x51_0002);
    for _ in 0..500 {
        let addr = rng.next_u64() & 0xffff_ffff;
        let bytes = rng.gen_range_u64(1, 1024);
        let t1 = rng.gen_range_f64(0.0, 100_000.0);
        let dt = rng.gen_range_f64(1.0, 100_000.0);
        let mut d1 = Dram::new(DramConfig::default());
        let mut d2 = Dram::new(DramConfig::default());
        let a = d1.read(addr, bytes, t1);
        let b = d2.read(addr, bytes, t1 + dt);
        assert!(b >= a);
    }
}

/// The MAI never issues more DRAM transactions than block requests, and
/// coalescing strictly reduces traffic for overlapping requests.
#[test]
fn mai_coalescing_reduces_traffic() {
    let mut rng = Rng::new(0x51_0003);
    for _ in 0..200 {
        let offsets: Vec<u64> =
            (0..rng.gen_range_usize(2, 50)).map(|_| rng.gen_range_u64(0, 256)).collect();
        let mut mai = Mai::new(MaiConfig::default());
        let mut dram = Dram::new(DramConfig::default());
        for &off in &offsets {
            mai.read(&mut dram, 0x1000 + off, 8, 0.0);
        }
        let stats = mai.stats();
        // Requests are counted at block granularity: an 8 B read can
        // straddle two 32 B blocks.
        assert!(stats.requests >= offsets.len() as u64);
        assert!(stats.requests <= 2 * offsets.len() as u64);
        assert_eq!(dram.reads() + stats.coalesced, stats.requests);
        // 256+8 B span = at most 9 distinct 32 B blocks.
        assert!(dram.reads() <= 9);
    }
}

/// Cache miss rates stay in [0, 1] and hits+misses equals accesses.
#[test]
fn cache_rates_are_probabilities() {
    let mut rng = Rng::new(0x51_0004);
    for _ in 0..50 {
        let addrs: Vec<(u64, bool)> = (0..rng.gen_range_usize(1, 300))
            .map(|_| (rng.next_u64() & 0xffff_ffff, rng.gen_bool(0.5)))
            .collect();
        let mut h = Hierarchy::i7_7820x();
        for &(addr, write) in &addrs {
            h.access(addr, write);
        }
        for rate in [h.l1.miss_rate(), h.l2.miss_rate(), h.llc_miss_rate()] {
            assert!((0.0..=1.0).contains(&rate));
        }
        assert_eq!(h.l1.hits() + h.l1.misses(), addrs.len() as u64);
    }
}

/// A reorder buffer's outputs are monotone regardless of input order.
#[test]
fn reorder_buffer_is_monotone() {
    let mut rng = Rng::new(0x51_0005);
    for _ in 0..100 {
        let mut rob = ReorderBuffer::new();
        let mut last = 0.0f64;
        for _ in 0..rng.gen_range_usize(1, 100) {
            let t = rng.gen_range_f64(0.0, 1_000_000.0);
            let out = rob.deliver(t);
            assert!(out >= last);
            assert!(out >= t);
            last = out;
        }
    }
}

/// Golden equivalence of the three trace delivery modes: per-op calls,
/// one `ops` slice, and `BufferedSink`-batched delivery must produce
/// bit-identical CPU reports — batching is a dispatch optimization, not
/// a model change.
#[test]
fn cpu_batched_trace_is_bit_identical_to_per_op() {
    let mut rng = Rng::new(0x51_0007);
    for round in 0..10 {
        let n = rng.gen_range_usize(100, 3000);
        let trace: Vec<Op> = (0..n)
            .map(|_| match rng.gen_range_u64(0, 9) {
                0 => Op::Load {
                    addr: 0x1000_0000 + rng.gen_range_u64(0, 1 << 24),
                    bytes: 8,
                    dependent: rng.gen_bool(0.5),
                },
                1 => Op::Store {
                    addr: 0x4000_0000 + rng.gen_range_u64(0, 1 << 24),
                    bytes: 8,
                },
                2 => Op::Alu(rng.gen_range_u64(1, 40) as u32),
                3 => Op::Branch,
                4 => Op::Call,
                5 => Op::ReflectCall,
                6 => Op::StrCompare(rng.gen_range_u64(1, 64) as u32),
                7 => Op::HashLookup,
                _ => Op::Alloc(rng.gen_range_u64(8, 512) as u32),
            })
            .collect();

        let mut per_op = Cpu::host();
        for &op in &trace {
            per_op.op(op);
        }
        let mut sliced = Cpu::host();
        sliced.ops(&trace);
        let mut buffered = Cpu::host();
        {
            let mut sink = BufferedSink::new(&mut buffered);
            for &op in &trace {
                sink.op(op);
            }
        }

        let a = per_op.report();
        for (label, r) in [("slice", sliced.report()), ("buffered", buffered.report())] {
            assert_eq!(a.cycles.to_bits(), r.cycles.to_bits(), "round {round} {label} cycles");
            assert_eq!(a.ns.to_bits(), r.ns.to_bits(), "round {round} {label} ns");
            assert_eq!(a.uops, r.uops, "round {round} {label} uops");
            assert_eq!(a.dram_bytes, r.dram_bytes, "round {round} {label} dram bytes");
            assert_eq!(
                a.llc_miss_rate.to_bits(),
                r.llc_miss_rate.to_bits(),
                "round {round} {label} llc"
            );
            assert_eq!(
                a.bandwidth_util.to_bits(),
                r.bandwidth_util.to_bits(),
                "round {round} {label} bw"
            );
        }
    }
}

/// TLB hit/miss accounting is exact and repeated pages always hit within
/// capacity.
#[test]
fn tlb_accounting() {
    let mut rng = Rng::new(0x51_0006);
    for _ in 0..100 {
        let pages: Vec<u64> =
            (0..rng.gen_range_usize(1, 200)).map(|_| rng.gen_range_u64(0, 64)).collect();
        let mut tlb = Tlb::default();
        for &p in &pages {
            tlb.translate(p << 30);
        }
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        // 64 distinct 1 GB pages fit in 128 entries: misses == distinct.
        assert_eq!(tlb.misses(), distinct.len() as u64);
        assert_eq!(tlb.hits() + tlb.misses(), pages.len() as u64);
    }
}
