//! Property-based tests on the timing substrate: physical sanity
//! invariants that must hold for any access pattern.

use proptest::prelude::*;
use sim::{Dram, DramConfig, Hierarchy, Mai, MaiConfig, ReorderBuffer, Tlb};

proptest! {
    /// DRAM completions respect causality and service time; the byte
    /// meter is exact; utilization never exceeds 1.
    #[test]
    fn dram_is_physical(
        accesses in proptest::collection::vec(
            (any::<u32>(), 1u64..4096, 0u32..1_000_000), 1..200)
    ) {
        let mut dram = Dram::new(DramConfig::default());
        let mut total = 0u64;
        let mut horizon: f64 = 0.0;
        for &(addr, bytes, now) in &accesses {
            let now = f64::from(now) / 10.0;
            let done = dram.read(u64::from(addr), bytes, now);
            let service = bytes as f64 / 19.2;
            prop_assert!(done >= now + service + 39.999, "done {done} < now {now} + service");
            total += bytes;
            horizon = horizon.max(done);
        }
        prop_assert_eq!(dram.total_bytes(), total);
        prop_assert!(dram.utilization(horizon) <= 1.0 + 1e-9);
    }

    /// Issuing the same accesses later never makes them complete earlier.
    #[test]
    fn dram_is_monotone_in_time(
        addr in any::<u32>(),
        bytes in 1u64..1024,
        t1 in 0u32..100_000,
        dt in 1u32..100_000,
    ) {
        let mut d1 = Dram::new(DramConfig::default());
        let mut d2 = Dram::new(DramConfig::default());
        let a = d1.read(u64::from(addr), bytes, f64::from(t1));
        let b = d2.read(u64::from(addr), bytes, f64::from(t1 + dt));
        prop_assert!(b >= a);
    }

    /// The MAI never issues more DRAM transactions than block requests,
    /// and coalescing strictly reduces traffic for overlapping requests.
    #[test]
    fn mai_coalescing_reduces_traffic(
        offsets in proptest::collection::vec(0u64..256, 2..50)
    ) {
        let mut mai = Mai::new(MaiConfig::default());
        let mut dram = Dram::new(DramConfig::default());
        for &off in &offsets {
            mai.read(&mut dram, 0x1000 + off, 8, 0.0);
        }
        let stats = mai.stats();
        // Requests are counted at block granularity: an 8 B read can
        // straddle two 32 B blocks.
        prop_assert!(stats.requests >= offsets.len() as u64);
        prop_assert!(stats.requests <= 2 * offsets.len() as u64);
        prop_assert_eq!(dram.reads() + stats.coalesced, stats.requests);
        // 256+8 B span = at most 9 distinct 32 B blocks.
        prop_assert!(dram.reads() <= 9);
    }

    /// Cache miss rates stay in [0, 1] and hits+misses equals accesses.
    #[test]
    fn cache_rates_are_probabilities(
        addrs in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..300)
    ) {
        let mut h = Hierarchy::i7_7820x();
        for &(addr, write) in &addrs {
            h.access(u64::from(addr), write);
        }
        for rate in [h.l1.miss_rate(), h.l2.miss_rate(), h.llc_miss_rate()] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        prop_assert_eq!(h.l1.hits() + h.l1.misses(), addrs.len() as u64);
    }

    /// A reorder buffer's outputs are monotone regardless of input order.
    #[test]
    fn reorder_buffer_is_monotone(times in proptest::collection::vec(0u32..1_000_000, 1..100)) {
        let mut rob = ReorderBuffer::new();
        let mut last = 0.0f64;
        for &t in &times {
            let out = rob.deliver(f64::from(t));
            prop_assert!(out >= last);
            prop_assert!(out >= f64::from(t));
            last = out;
        }
    }

    /// TLB hit/miss accounting is exact and repeated pages always hit
    /// within capacity.
    #[test]
    fn tlb_accounting(pages in proptest::collection::vec(0u64..64, 1..200)) {
        let mut tlb = Tlb::default();
        for &p in &pages {
            tlb.translate(p << 30);
        }
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        // 64 distinct 1 GB pages fit in 128 entries: misses == distinct.
        prop_assert_eq!(tlb.misses(), distinct.len() as u64);
        prop_assert_eq!(tlb.hits() + tlb.misses(), pages.len() as u64);
    }
}
