//! The block manager: a bounded memory region of serialized blocks with
//! LRU eviction, simulated disk spill, and lineage recomputation.
//!
//! Modeled on Spark's `BlockManager` in `MEMORY_SER` mode: each block is
//! a serialized object-graph stream produced by an
//! [`Engine`](crate::Engine). Blocks live in a memory region bounded by
//! [`StoreConfig::memory_budget`]; inserting past the budget evicts the
//! least-recently-used blocks, which either **spill** to a simulated
//! [`sim::Disk`] or are **dropped** for later lineage recomputation,
//! per [`MissPolicy`]. Every transition is charged on the caller's
//! simulated timeline: spill writes and fetch reads go through the
//! disk's seek + bandwidth time-bucket ledger, recomputation costs what
//! the [`BlockSource`] reports.
//!
//! The spill file holds the real bytes (this crate's components are
//! functional, not just timed), so a fetched block is byte-identical to
//! what was stored — test-enforced per backend. A block fetched back
//! from disk is promoted to memory but keeps its disk image: re-evicting
//! it later costs nothing, exactly like Spark's shuffle-safe spill
//! files, and bounds file growth under thrash.
//!
//! Faults: with [`StoreConfig::fault`] set, spill reloads can fail. A
//! **transient read error** ([`sim::FaultConfig::disk_read_error`]) is
//! retried with exponential backoff, every failed attempt's disk time
//! and backoff charged to the caller's clock; the final attempt within
//! the retry budget succeeds (the device-level retry model). A
//! **corrupted reload** ([`sim::FaultConfig::spill_corruption`],
//! only drawn for checksummed stores) really flips a byte of the
//! reloaded image, fails the [`sdformat::frame`] CRC check, and falls
//! back to the existing recompute-from-lineage path — the same
//! [`BlockSource`] that serves dropped blocks. Anomalies surface as
//! typed [`StoreError`]s, never panics.

use std::collections::BTreeMap;
use std::fmt;

use sim::{Disk, DiskConfig, FaultConfig, FaultInjector};

/// What a cache miss does with a block that is no longer in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissPolicy {
    /// Evictions spill to disk; misses fetch and deserialize.
    Fetch,
    /// Evictions drop the bytes; misses recompute from lineage (and
    /// re-serialize). The disk is never written.
    Recompute,
    /// Evictions compare the block's future fetch cost
    /// ([`DiskConfig::access_estimate_ns`]) against its recorded
    /// recomputation cost and pick the cheaper side.
    Auto,
}

impl MissPolicy {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MissPolicy::Fetch => "fetch",
            MissPolicy::Recompute => "recompute",
            MissPolicy::Auto => "auto",
        }
    }
}

/// Block-store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Memory region for resident serialized blocks, in bytes.
    pub memory_budget: u64,
    /// Spill device model.
    pub disk: DiskConfig,
    /// Eviction/miss policy.
    pub policy: MissPolicy,
    /// Fault injection for spill reloads (`None` = fault-free). The
    /// caller mixes its scope (e.g. the mapper index) into the seed so
    /// per-store streams are independent and thread-count invariant.
    pub fault: Option<FaultConfig>,
    /// Whether stored blocks carry the [`sdformat::frame`] CRC footer;
    /// required for reload-corruption injection to be detectable.
    pub checksum: bool,
}

impl StoreConfig {
    /// A fault-free, checksum-less configuration — the pre-fault-model
    /// behaviour.
    pub fn plain(memory_budget: u64, disk: DiskConfig, policy: MissPolicy) -> Self {
        StoreConfig {
            memory_budget,
            disk,
            policy,
            fault: None,
            checksum: false,
        }
    }
}

/// Errors from a block-store operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The block id was never [`BlockStore::put`].
    UnknownBlock(usize),
    /// The block's bytes are gone (dropped, or its reload was corrupt)
    /// and the store has no lineage to rebuild it from.
    NoLineage(usize),
    /// Reload-corruption injection is configured but blocks carry no
    /// checksum frame, so corruption would be undetectable.
    ChecksumRequired,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownBlock(id) => write!(f, "unknown block {id}"),
            StoreError::NoLineage(id) => {
                write!(f, "block {id} is unrecoverable: no lineage to rebuild it from")
            }
            StoreError::ChecksumRequired => {
                write!(f, "spill-corruption injection requires checksummed blocks")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Rebuilds dropped blocks from lineage.
///
/// `recompute` returns the block's bytes — which must be identical to
/// what was originally stored (lineage is deterministic) — plus the
/// simulated nanoseconds the rebuild cost (graph construction, GC
/// pressure, and re-serialization).
pub trait BlockSource {
    /// Recomputes block `id` from lineage.
    ///
    /// # Errors
    /// [`StoreError::NoLineage`] when the block cannot be rebuilt.
    fn recompute(&mut self, id: usize) -> Result<(Vec<u8>, f64), StoreError>;
}

/// A [`BlockSource`] for stores whose blocks are never dropped
/// (spill-only configurations, e.g. shuffle spill files). Asking it to
/// rebuild anything is a typed error, not a panic.
pub struct NoLineage;

impl BlockSource for NoLineage {
    fn recompute(&mut self, id: usize) -> Result<(Vec<u8>, f64), StoreError> {
        Err(StoreError::NoLineage(id))
    }
}

/// How one [`BlockStore::get`] was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident in memory.
    Hit,
    /// The block was read back from the spill file.
    DiskFetch,
    /// The block was rebuilt from lineage.
    Recomputed,
}

/// One completed [`BlockStore::get`].
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// How the access was served.
    pub outcome: AccessOutcome,
    /// Completion time on the caller's simulated timeline (includes any
    /// eviction spill writes the access itself triggered).
    pub done_ns: f64,
}

/// Counters over a store's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Blocks inserted.
    pub puts: u64,
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses served from the spill file.
    pub disk_fetches: u64,
    /// Accesses served by lineage recomputation.
    pub recomputes: u64,
    /// Blocks evicted from the memory region.
    pub evictions: u64,
    /// Bytes evicted from the memory region.
    pub evicted_bytes: u64,
    /// Evictions that wrote a new spill image.
    pub spills: u64,
    /// Bytes newly written to the spill file.
    pub spilled_bytes: u64,
    /// Simulated time spent writing spill images.
    pub spill_ns: f64,
    /// Simulated time spent reading blocks back from disk.
    pub fetch_ns: f64,
    /// Simulated time spent recomputing dropped blocks.
    pub recompute_ns: f64,
    /// Transient disk read errors that were retried.
    pub read_retries: u64,
    /// Simulated time lost to failed reads and retry backoff.
    pub retry_ns: f64,
    /// Corrupted reloads detected by the block checksum (each recovered
    /// through lineage recomputation).
    pub checksum_errors: u64,
}

/// Where a block's bytes currently live.
struct Block {
    /// Resident serialized bytes (`None` once evicted).
    bytes: Option<Vec<u8>>,
    /// Stream length (survives eviction).
    len: u64,
    /// Offset of the block's spill image, if one was ever written.
    disk_offset: Option<u64>,
    /// Lineage rebuild cost recorded at `put`.
    recompute_ns: f64,
    /// Recency tick while resident (key into the LRU index).
    tick: Option<u64>,
}

/// Scope id for a store's private injector stream (the caller
/// differentiates stores via the fault seed).
const STORE_FAULT_SCOPE: u64 = 0x0D15_C0DE;

/// The block manager.
pub struct BlockStore {
    cfg: StoreConfig,
    disk: Disk,
    blocks: Vec<Block>,
    /// Append-only spill image: the real bytes behind the disk model.
    spill: Vec<u8>,
    /// Resident bytes.
    used: u64,
    /// Monotonic recency clock.
    clock: u64,
    /// LRU index: recency tick → block id (oldest first).
    lru: BTreeMap<u64, usize>,
    /// Seeded anomaly source for spill reloads.
    injector: Option<FaultInjector>,
    stats: StoreStats,
}

impl BlockStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> BlockStore {
        BlockStore {
            disk: Disk::new(cfg.disk),
            blocks: Vec::new(),
            spill: Vec::new(),
            used: 0,
            clock: 0,
            lru: BTreeMap::new(),
            injector: cfg.fault.map(|f| f.scoped(STORE_FAULT_SCOPE)),
            cfg,
            stats: StoreStats::default(),
        }
    }

    /// Inserts a new block, evicting LRU blocks past the memory budget.
    /// Returns the block's id (dense, in insertion order) and the
    /// completion time — `now_ns` plus any spill writes the insertion
    /// triggered.
    pub fn put(&mut self, bytes: Vec<u8>, recompute_ns: f64, now_ns: f64) -> (usize, f64) {
        let id = self.blocks.len();
        let len = bytes.len() as u64;
        self.used += len;
        self.blocks.push(Block {
            bytes: Some(bytes),
            len,
            disk_offset: None,
            recompute_ns,
            tick: None,
        });
        self.touch(id);
        self.stats.puts += 1;
        let done = self.enforce_budget(now_ns);
        (id, done)
    }

    /// Accesses a block: a resident block is a hit; an evicted one is
    /// fetched from disk or recomputed via `source`, promoted back into
    /// memory, and may in turn evict others. Returns how the access was
    /// served and when it completed on the simulated timeline.
    ///
    /// Under fault injection a reload can fail: transient read errors
    /// retry with exponential backoff (each failed read's disk time and
    /// the backoff charged to the clock), and a corrupted reload fails
    /// the frame checksum and falls back to lineage recomputation.
    ///
    /// # Errors
    /// [`StoreError::UnknownBlock`] for an id never put;
    /// [`StoreError::ChecksumRequired`] when corruption injection fires
    /// on a checksum-less store; [`StoreError::NoLineage`] when a
    /// dropped or corrupt block has no lineage.
    pub fn get(
        &mut self,
        id: usize,
        now_ns: f64,
        source: &mut dyn BlockSource,
    ) -> Result<Access, StoreError> {
        if id >= self.blocks.len() {
            return Err(StoreError::UnknownBlock(id));
        }
        if self.blocks[id].bytes.is_some() {
            self.touch(id);
            self.stats.hits += 1;
            return Ok(Access { outcome: AccessOutcome::Hit, done_ns: now_ns });
        }
        let (outcome, mut now) = if let Some(off) = self.blocks[id].disk_offset {
            let (bytes, outcome, done) = self.reload(id, off, now_ns, source)?;
            self.blocks[id].bytes = Some(bytes);
            (outcome, done)
        } else {
            let (bytes, cost_ns) = self.recompute_into(id, source)?;
            self.blocks[id].bytes = Some(bytes);
            (AccessOutcome::Recomputed, now_ns + cost_ns)
        };
        self.used += self.blocks[id].len;
        self.touch(id);
        now = self.enforce_budget(now);
        Ok(Access { outcome, done_ns: now })
    }

    /// Rebuilds block `id` via the lineage source, checking the length
    /// invariant and booking the recompute counters.
    fn recompute_into(
        &mut self,
        id: usize,
        source: &mut dyn BlockSource,
    ) -> Result<(Vec<u8>, f64), StoreError> {
        let (bytes, cost_ns) = source.recompute(id)?;
        assert_eq!(
            bytes.len() as u64,
            self.blocks[id].len,
            "recomputed block {id} changed length"
        );
        self.stats.recomputes += 1;
        self.stats.recompute_ns += cost_ns;
        Ok((bytes, cost_ns))
    }

    /// Reads block `id` back from its spill image at `off`, surviving
    /// injected faults. Returns the block's bytes, how the access was
    /// ultimately served, and its completion time.
    fn reload(
        &mut self,
        id: usize,
        off: u64,
        now_ns: f64,
        source: &mut dyn BlockSource,
    ) -> Result<(Vec<u8>, AccessOutcome, f64), StoreError> {
        let len = self.blocks[id].len;
        let mut now = now_ns;
        let mut attempt = 0u32;
        loop {
            let done = self.disk.read(off, len, now);
            // Fault draws are per attempt, in a fixed order, from the
            // store's private stream — deterministic for any thread
            // count because the store simulation itself is sequential.
            let (transient, corrupt) = match &mut self.injector {
                Some(inj) => {
                    let budget_left = attempt < inj.config().max_retries;
                    (inj.disk_read_fails() && budget_left, inj.corrupt_spill())
                }
                None => (false, false),
            };
            if corrupt {
                if !self.cfg.checksum {
                    return Err(StoreError::ChecksumRequired);
                }
                // The image on disk is damaged: re-reading cannot help.
                // Really corrupt the reloaded copy, demonstrate the
                // frame check catches it, then rebuild from lineage.
                let mut image = self.spill[off as usize..(off + len) as usize].to_vec();
                let inj = self.injector.as_mut().expect("corrupt implies injector");
                let (pos, mask) = inj.corrupt_byte(image.len());
                image[pos] ^= mask;
                debug_assert!(
                    sdformat::frame::verify(&image).is_err(),
                    "single-byte corruption must fail the CRC"
                );
                self.stats.checksum_errors += 1;
                self.stats.fetch_ns += done - now;
                let (bytes, cost_ns) = self.recompute_into(id, source)?;
                return Ok((bytes, AccessOutcome::Recomputed, done + cost_ns));
            }
            if transient {
                // Device-level read error: charge the failed read and
                // the backoff, then try again. The budget check above
                // forces the last attempt to succeed, so the store
                // always makes progress.
                let inj = self.injector.as_ref().expect("transient implies injector");
                let resume = done + inj.backoff_ns(attempt);
                self.stats.read_retries += 1;
                self.stats.retry_ns += resume - now;
                now = resume;
                attempt += 1;
                continue;
            }
            self.stats.disk_fetches += 1;
            self.stats.fetch_ns += done - now;
            let image = self.spill[off as usize..(off + len) as usize].to_vec();
            return Ok((image, AccessOutcome::DiskFetch, done));
        }
    }

    /// The block's current bytes: resident memory first, else the spill
    /// image, else `None` (dropped).
    pub fn bytes(&self, id: usize) -> Option<&[u8]> {
        let b = self.blocks.get(id)?;
        if let Some(bytes) = &b.bytes {
            return Some(bytes);
        }
        let off = b.disk_offset? as usize;
        Some(&self.spill[off..off + b.len as usize])
    }

    /// Whether the block is resident in the memory region.
    pub fn in_memory(&self, id: usize) -> bool {
        self.blocks.get(id).is_some_and(|b| b.bytes.is_some())
    }

    /// Whether the block has a spill image on disk.
    pub fn on_disk(&self, id: usize) -> bool {
        self.blocks.get(id).is_some_and(|b| b.disk_offset.is_some())
    }

    /// Blocks inserted so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Resident bytes.
    pub fn mem_used(&self) -> u64 {
        self.used
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The spill device (byte meters, seek counts, utilization).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Starts recording one [`sim::DiskWindow`] per spill-device access
    /// (telemetry's disk busy lanes). Off by default.
    pub fn record_disk_tape(&mut self) {
        self.disk.record_tape();
    }

    /// Drains the spill device's recorded access windows (empty unless
    /// [`BlockStore::record_disk_tape`] was called).
    pub fn take_disk_tape(&mut self) -> Vec<sim::DiskWindow> {
        self.disk.take_tape()
    }

    /// Moves `id` to the most-recently-used position.
    fn touch(&mut self, id: usize) {
        if let Some(t) = self.blocks[id].tick.take() {
            self.lru.remove(&t);
        }
        self.clock += 1;
        self.blocks[id].tick = Some(self.clock);
        self.lru.insert(self.clock, id);
    }

    /// Evicts LRU blocks until the region fits the budget, charging any
    /// spill writes from `now_ns`; returns the completion time.
    fn enforce_budget(&mut self, now_ns: f64) -> f64 {
        let mut now = now_ns;
        while self.used > self.cfg.memory_budget {
            let (&tick, &victim) = self.lru.iter().next().expect("used > 0 implies a resident block");
            self.lru.remove(&tick);
            let b = &mut self.blocks[victim];
            b.tick = None;
            let bytes = b.bytes.take().expect("LRU index only holds resident blocks");
            self.used -= b.len;
            self.stats.evictions += 1;
            self.stats.evicted_bytes += b.len;
            let spill = match self.cfg.policy {
                MissPolicy::Fetch => true,
                MissPolicy::Recompute => false,
                MissPolicy::Auto => {
                    self.cfg.disk.access_estimate_ns(b.len) <= b.recompute_ns
                }
            };
            if spill && b.disk_offset.is_none() {
                let off = self.spill.len() as u64;
                self.spill.extend_from_slice(&bytes);
                b.disk_offset = Some(off);
                let done = self.disk.write(off, b.len, now);
                self.stats.spills += 1;
                self.stats.spilled_bytes += b.len;
                self.stats.spill_ns += done - now;
                now = done;
            }
            // A block with an existing spill image is dropped for free:
            // the image is immutable, so re-eviction needs no write.
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget: u64, policy: MissPolicy) -> BlockStore {
        BlockStore::new(StoreConfig::plain(budget, DiskConfig::ssd(), policy))
    }

    fn block(fill: u8, len: usize) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut s = store(300, MissPolicy::Fetch);
        let mut now = 0.0;
        for i in 0..3 {
            let (_, done) = s.put(block(i, 100), 1e6, now);
            now = done;
        }
        assert!(s.in_memory(0) && s.in_memory(1) && s.in_memory(2));
        // Touch 0 so 1 becomes the LRU victim.
        let mut none = NoLineage;
        now = s.get(0, now, &mut none).unwrap().done_ns;
        let (id, done) = s.put(block(9, 100), 1e6, now);
        now = done;
        assert_eq!(id, 3);
        assert!(s.in_memory(0), "recently touched block survives");
        assert!(!s.in_memory(1), "LRU block evicted");
        assert!(s.on_disk(1), "fetch policy spills");
        assert_eq!(s.stats().evictions, 1);
        assert_eq!(s.stats().evicted_bytes, 100);

        // Fetch promotes and keeps the disk image.
        let a = s.get(1, now, &mut none).unwrap();
        assert_eq!(a.outcome, AccessOutcome::DiskFetch);
        assert!(a.done_ns > now, "disk read takes simulated time");
        assert!(s.on_disk(1), "spill image survives promotion");
        // The promotion evicted the new LRU victim (block 2).
        assert!(!s.in_memory(2));
        assert_eq!(s.bytes(1).unwrap(), &block(1, 100)[..], "byte-identical after reload");
    }

    #[test]
    fn recompute_policy_never_writes_disk() {
        let mut s = store(100, MissPolicy::Recompute);
        let (_, n1) = s.put(block(1, 80), 5e3, 0.0);
        let (_, n2) = s.put(block(2, 80), 5e3, n1);
        assert!(!s.in_memory(0));
        assert!(!s.on_disk(0));
        assert!(s.bytes(0).is_none(), "dropped block has no bytes");
        struct Src;
        impl BlockSource for Src {
            fn recompute(&mut self, _id: usize) -> Result<(Vec<u8>, f64), StoreError> {
                Ok((block(1, 80), 5e3))
            }
        }
        let a = s.get(0, n2, &mut Src).unwrap();
        assert_eq!(a.outcome, AccessOutcome::Recomputed);
        assert_eq!(a.done_ns, n2 + 5e3);
        assert_eq!(s.disk().write_bytes(), 0);
        assert_eq!(s.stats().recomputes, 1);
    }

    #[test]
    fn auto_policy_picks_the_cheaper_side() {
        // Cheap recompute vs an HDD seek: drop.
        let mut s = BlockStore::new(StoreConfig::plain(100, DiskConfig::hdd(), MissPolicy::Auto));
        s.put(block(1, 80), 1e3, 0.0);
        s.put(block(2, 80), 1e3, 0.0);
        assert!(!s.on_disk(0), "recompute is cheaper than an HDD seek");

        // Expensive recompute vs NVMe: spill.
        let mut s = BlockStore::new(StoreConfig::plain(100, DiskConfig::nvme(), MissPolicy::Auto));
        s.put(block(1, 80), 1e9, 0.0);
        s.put(block(2, 80), 1e9, 0.0);
        assert!(s.on_disk(0), "NVMe fetch is cheaper than recomputing");
    }

    #[test]
    fn hits_are_free_and_counted() {
        let mut s = store(1 << 20, MissPolicy::Fetch);
        let (id, now) = s.put(block(7, 64), 1e6, 0.0);
        let a = s.get(id, now, &mut NoLineage).unwrap();
        assert_eq!(a.outcome, AccessOutcome::Hit);
        assert_eq!(a.done_ns, now, "memory hits cost no store time");
        assert_eq!(s.stats().hits, 1);
    }

    #[test]
    fn oversized_block_thrashes_but_stays_reachable() {
        let mut s = store(50, MissPolicy::Fetch);
        let (id, now) = s.put(block(3, 200), 1e6, 0.0);
        assert!(!s.in_memory(id), "block larger than the budget cannot stay resident");
        assert!(s.on_disk(id));
        let a = s.get(id, now, &mut NoLineage).unwrap();
        assert_eq!(a.outcome, AccessOutcome::DiskFetch);
        assert_eq!(s.bytes(id).unwrap(), &block(3, 200)[..]);
        // Re-eviction of the promoted copy reused the existing image.
        assert_eq!(s.stats().spills, 1);
    }

    #[test]
    fn missing_lineage_is_a_typed_error() {
        let mut s = store(100, MissPolicy::Recompute);
        let (_, n1) = s.put(block(1, 80), 5e3, 0.0);
        let (_, n2) = s.put(block(2, 80), 5e3, n1);
        assert_eq!(
            s.get(0, n2, &mut NoLineage).unwrap_err(),
            StoreError::NoLineage(0),
            "dropped block without lineage must not panic"
        );
        assert_eq!(
            s.get(99, n2, &mut NoLineage).unwrap_err(),
            StoreError::UnknownBlock(99)
        );
    }

    #[test]
    fn transient_read_errors_retry_with_backoff() {
        let fault = FaultConfig {
            disk_read_error: 1.0,
            ..FaultConfig::none()
        };
        let cfg = StoreConfig {
            fault: Some(fault),
            ..StoreConfig::plain(100, DiskConfig::ssd(), MissPolicy::Fetch)
        };
        let mut s = BlockStore::new(cfg);
        let (_, n1) = s.put(block(1, 80), 1e6, 0.0);
        let (_, n2) = s.put(block(2, 80), 1e6, n1);
        assert!(s.on_disk(0));
        let a = s.get(0, n2, &mut NoLineage).unwrap();
        assert_eq!(a.outcome, AccessOutcome::DiskFetch, "budget forces eventual success");
        assert_eq!(s.stats().read_retries, u64::from(fault.max_retries));
        assert!(s.stats().retry_ns > 0.0, "failed reads and backoff cost time");
        // Backoff alone is 50k * (1+2+4+8); the access must absorb it.
        assert!(a.done_ns - n2 > 15.0 * fault.backoff_ns, "{}", a.done_ns - n2);
        assert_eq!(s.bytes(0).unwrap(), &block(1, 80)[..], "reload is still byte-exact");
    }

    #[test]
    fn corrupt_reload_falls_back_to_lineage() {
        let fault = FaultConfig {
            spill_corruption: 1.0,
            ..FaultConfig::none()
        };
        let cfg = StoreConfig {
            fault: Some(fault),
            checksum: true,
            ..StoreConfig::plain(100, DiskConfig::ssd(), MissPolicy::Fetch)
        };
        let mut s = BlockStore::new(cfg);
        // Checksummed stores hold sealed frames.
        let framed = sdformat::seal(block(1, 72));
        let len = framed.len();
        let (_, n1) = s.put(framed.clone(), 1e6, 0.0);
        let (_, n2) = s.put(sdformat::seal(block(2, 72)), 1e6, n1);
        assert!(s.on_disk(0));
        struct Src(Vec<u8>);
        impl BlockSource for Src {
            fn recompute(&mut self, _id: usize) -> Result<(Vec<u8>, f64), StoreError> {
                Ok((self.0.clone(), 7e3))
            }
        }
        let a = s.get(0, n2, &mut Src(framed.clone())).unwrap();
        assert_eq!(a.outcome, AccessOutcome::Recomputed, "corruption is unrecoverable by re-read");
        assert_eq!(s.stats().checksum_errors, 1);
        assert_eq!(s.stats().recomputes, 1);
        assert_eq!(s.bytes(0).unwrap(), &framed[..len], "lineage restores the exact frame");
    }

    #[test]
    fn corruption_injection_requires_checksums() {
        let cfg = StoreConfig {
            fault: Some(FaultConfig {
                spill_corruption: 1.0,
                ..FaultConfig::none()
            }),
            ..StoreConfig::plain(100, DiskConfig::ssd(), MissPolicy::Fetch)
        };
        let mut s = BlockStore::new(cfg);
        let (_, n1) = s.put(block(1, 80), 1e6, 0.0);
        let (_, n2) = s.put(block(2, 80), 1e6, n1);
        assert_eq!(
            s.get(0, n2, &mut NoLineage).unwrap_err(),
            StoreError::ChecksumRequired,
            "undetectable corruption must be rejected, not simulated"
        );
    }

    #[test]
    fn zero_rate_injector_matches_fault_free_run() {
        let run = |fault: Option<FaultConfig>| {
            let cfg = StoreConfig {
                fault,
                ..StoreConfig::plain(100, DiskConfig::ssd(), MissPolicy::Fetch)
            };
            let mut s = BlockStore::new(cfg);
            let mut now = 0.0;
            for i in 0..4 {
                let (_, done) = s.put(block(i, 60), 1e6, now);
                now = done;
            }
            for id in [0usize, 1, 2, 0] {
                now = s.get(id, now, &mut NoLineage).unwrap().done_ns;
            }
            (now, s.stats())
        };
        assert_eq!(
            run(None),
            run(Some(FaultConfig::none())),
            "a zero-rate injector must add zero overhead"
        );
    }

    #[test]
    fn re_eviction_reuses_the_spill_image() {
        let mut s = store(100, MissPolicy::Fetch);
        let mut now = 0.0;
        for i in 0..2 {
            let (_, done) = s.put(block(i, 80), 1e6, now);
            now = done;
        }
        assert_eq!(s.stats().spills, 1); // block 0 spilled
        now = s.get(0, now, &mut NoLineage).unwrap().done_ns; // promotes 0, evicts 1
        now = s.get(1, now, &mut NoLineage).unwrap().done_ns; // promotes 1, evicts 0 again
        let _ = now;
        assert_eq!(s.stats().spills, 2, "only first evictions write images");
        assert_eq!(s.stats().evictions, 3);
        assert_eq!(s.disk().writes() as u64, 2);
    }
}
