//! Per-executor serialization engines.
//!
//! Every executor owns one engine: a software [`Serializer`] timed on a
//! fresh [`sim::Cpu`] host-core model per request (the harness's
//! convention), or a private Cereal [`Accelerator`] whose unit models
//! time and schedule requests internally. The engine lives here (rather
//! than in `shuffle`) because both the shuffle service and the block
//! store serialize through it.
//!
//! Checksummed frames: with the `checksum` flag, streams leave the
//! engine sealed with the [`sdformat::frame`] CRC-32 footer and every
//! deserialization verifies integrity *before* decoding — so a
//! corrupted stream surfaces as [`EngineError::Checksum`] for every
//! backend, software and accelerator alike, instead of decoding
//! garbage. Sealing and verification charge [`sdformat::crc_ns`] to the
//! request's busy time.

use cereal::Accelerator;
use sdformat::frame;
use sdheap::{Addr, Heap, KlassRegistry};
use serializers::{
    Archive, ArchiveView, JavaSd, JsonLike, Kryo, ProtoLike, SerError, Serializer, Skyway,
};
use sim::Cpu;
use std::fmt;
use telemetry::{NoopSink, Sink};

/// Histogram names for per-op-class host-CPU time, index-aligned with
/// [`sim::OP_CLASS_NAMES`].
const CPU_CLASS_HISTS: [&str; 10] = [
    "cpu.load.dep_ns",
    "cpu.load.indep_ns",
    "cpu.store_ns",
    "cpu.alu_ns",
    "cpu.branch_ns",
    "cpu.call_ns",
    "cpu.reflect_call_ns",
    "cpu.str_compare_ns",
    "cpu.hash_lookup_ns",
    "cpu.alloc_ns",
];

/// Books a traced request's per-op-class time and uop count.
fn emit_cpu_classes<S: Sink>(sink: &mut S, cpu: &Cpu) {
    for (name, ns, uops) in cpu.op_classes() {
        let i = sim::OP_CLASS_NAMES
            .iter()
            .position(|n| *n == name)
            .expect("class name comes from the same table");
        sink.observe(CPU_CLASS_HISTS[i], ns);
        sink.count("cpu.uops", uops);
    }
}

/// Destination-heap base for reconstruction (clear of every source).
pub const DST_BASE: u64 = 0x40_0000_0000;

/// A serialization backend an executor can run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Java built-in serialization model.
    Java,
    /// Kryo model.
    Kryo,
    /// Skyway model.
    Skyway,
    /// JSON-text model.
    JsonLike,
    /// Protobuf-like model.
    ProtoLike,
    /// Zero-copy archive: deserialize = validate in place, fold off the
    /// wire bytes (the software rival to the Cereal DU).
    Archive,
    /// The Cereal accelerator (Table I configuration).
    Cereal,
}

impl Backend {
    /// Every backend, software baselines first, the accelerator last.
    /// This is the single roster site: adding a variant means extending
    /// this slice (plus the `name`/`Engine::new` match arms the compiler
    /// then points at).
    pub const ALL: &'static [Backend] = &[
        Backend::Java,
        Backend::Kryo,
        Backend::Skyway,
        Backend::JsonLike,
        Backend::ProtoLike,
        Backend::Archive,
        Backend::Cereal,
    ];

    /// All backends, software baselines first.
    pub fn all() -> &'static [Backend] {
        Backend::ALL
    }

    /// Display name (matching the figure harness).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Java => "Java",
            Backend::Kryo => "Kryo",
            Backend::Skyway => "Skyway",
            Backend::JsonLike => "JsonLike",
            Backend::ProtoLike => "ProtoLike",
            Backend::Archive => "Archive",
            Backend::Cereal => "Cereal",
        }
    }
}

/// Errors from a fallible engine operation.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The stream failed its CRC frame check — corruption detected
    /// before any backend decoded a byte.
    Checksum(sdformat::FrameError),
    /// The backend rejected the (intact) stream.
    Ser(SerError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Checksum(e) => write!(f, "checksum: {e}"),
            EngineError::Ser(e) => write!(f, "serializer: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Checksum(e) => Some(e),
            EngineError::Ser(e) => Some(e),
        }
    }
}

impl From<sdformat::FrameError> for EngineError {
    fn from(e: sdformat::FrameError) -> Self {
        EngineError::Checksum(e)
    }
}

impl From<SerError> for EngineError {
    fn from(e: SerError) -> Self {
        EngineError::Ser(e)
    }
}

/// Timing of one engine-serialized batch.
pub struct SerTiming {
    /// Time the engine was busy with this request.
    pub busy_ns: f64,
    /// Completion time on the engine's own timeline (accelerators
    /// schedule internally across units); `None` for the serial
    /// one-core software path.
    pub done_ns: Option<f64>,
}

/// One executor's engine.
pub enum Engine {
    /// A software serializer baseline.
    Software(Box<dyn Serializer>),
    /// A private Cereal accelerator.
    Cereal(Box<Accelerator>),
}

impl Engine {
    /// Builds the engine for `backend`, registering every class of `reg`
    /// with the accelerator's hardware table when applicable.
    pub fn new(backend: Backend, reg: &KlassRegistry) -> Engine {
        match backend {
            Backend::Java => Engine::Software(Box::new(JavaSd::new())),
            Backend::Kryo => Engine::Software(Box::new(Kryo::new())),
            Backend::Skyway => Engine::Software(Box::new(Skyway::new())),
            Backend::JsonLike => Engine::Software(Box::new(JsonLike::new())),
            Backend::ProtoLike => Engine::Software(Box::new(ProtoLike::new())),
            Backend::Archive => Engine::Software(Box::new(Archive::new())),
            Backend::Cereal => {
                let mut accel = Accelerator::paper();
                accel.register_all(reg).expect("class table sized for workload");
                Engine::Cereal(Box::new(accel))
            }
        }
    }

    /// Serializes the graph at `root`, returning the stream and timing.
    pub fn serialize(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
    ) -> (Vec<u8>, SerTiming) {
        self.serialize_sunk(heap, reg, root, &mut NoopSink)
    }

    /// [`Engine::serialize`] with a telemetry sink: traced software
    /// requests book per-op-class host-CPU time (the §III bottleneck
    /// breakdown), traced accelerator requests book SU busy time and
    /// request/byte counters. The returned bytes and timing are
    /// identical to the untraced path for any sink.
    pub fn serialize_sunk<S: Sink>(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        sink: &mut S,
    ) -> (Vec<u8>, SerTiming) {
        match self {
            Engine::Software(ser) => {
                let mut cpu = Cpu::host();
                if S::ENABLED {
                    cpu.track_op_classes(true);
                }
                let bytes = ser
                    .serialize(heap, reg, root, &mut cpu)
                    .expect("workload registers every class");
                let busy_ns = cpu.report().ns;
                if S::ENABLED {
                    emit_cpu_classes(sink, &cpu);
                }
                (bytes, SerTiming { busy_ns, done_ns: None })
            }
            Engine::Cereal(accel) => {
                let r = accel
                    .serialize(heap, reg, root)
                    .expect("workload registers every class");
                let t = SerTiming {
                    busy_ns: r.run.busy_ns(),
                    done_ns: Some(r.run.end_ns),
                };
                if S::ENABLED {
                    sink.count("accel.ser_requests", 1);
                    sink.count("accel.ser_bytes", r.bytes.len() as u64);
                    sink.observe("accel.su_busy_ns", t.busy_ns);
                }
                (r.bytes, t)
            }
        }
    }

    /// Serializes the graph at `root`, optionally sealing the stream
    /// with the CRC frame footer. The sealing cost
    /// ([`sdformat::crc_ns`] over the payload) is charged to the
    /// request's busy time (and to its completion time on the
    /// accelerator's timeline).
    pub fn serialize_framed(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        checksum: bool,
    ) -> (Vec<u8>, SerTiming) {
        self.serialize_framed_sunk(heap, reg, root, checksum, &mut NoopSink)
    }

    /// [`Engine::serialize_framed`] with a telemetry sink (see
    /// [`Engine::serialize_sunk`] for what traced requests book).
    pub fn serialize_framed_sunk<S: Sink>(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
        checksum: bool,
        sink: &mut S,
    ) -> (Vec<u8>, SerTiming) {
        let (mut bytes, mut t) = self.serialize_sunk(heap, reg, root, sink);
        if checksum {
            let seal_ns = frame::crc_ns(bytes.len());
            frame::seal_into(&mut bytes);
            t.busy_ns += seal_ns;
            t.done_ns = t.done_ns.map(|d| d + seal_ns);
        }
        (bytes, t)
    }

    /// Reconstructs a stream into a fresh destination heap; returns the
    /// heap, the root, and the request's busy time.
    ///
    /// # Panics
    /// Panics on a malformed stream — callers that can receive
    /// corrupted or untrusted bytes use [`Engine::try_deserialize`].
    pub fn deserialize(
        &mut self,
        bytes: &[u8],
        reg: &KlassRegistry,
        capacity: u64,
    ) -> (Heap, Addr, f64) {
        self.try_deserialize(bytes, reg, capacity, false)
            .expect("stream produced by the matching serializer")
    }

    /// Reconstructs a stream into a fresh destination heap. With
    /// `checksum`, the stream's CRC frame is verified *before* any
    /// decoding — corruption surfaces as [`EngineError::Checksum`] for
    /// every backend — and the verification cost is charged to the
    /// returned busy time.
    ///
    /// # Errors
    /// [`EngineError::Checksum`] on frame damage;
    /// [`EngineError::Ser`] when the backend rejects the stream.
    pub fn try_deserialize(
        &mut self,
        bytes: &[u8],
        reg: &KlassRegistry,
        capacity: u64,
        checksum: bool,
    ) -> Result<(Heap, Addr, f64), EngineError> {
        self.try_deserialize_sunk(bytes, reg, capacity, checksum, &mut NoopSink)
    }

    /// [`Engine::try_deserialize`] with a telemetry sink: traced software
    /// requests book per-op-class host-CPU time, traced accelerator
    /// requests book DU busy time and request/byte counters.
    ///
    /// # Errors
    /// Same as [`Engine::try_deserialize`].
    pub fn try_deserialize_sunk<S: Sink>(
        &mut self,
        bytes: &[u8],
        reg: &KlassRegistry,
        capacity: u64,
        checksum: bool,
        sink: &mut S,
    ) -> Result<(Heap, Addr, f64), EngineError> {
        let (payload, verify_ns) = if checksum {
            (frame::verify(bytes)?, frame::crc_ns(bytes.len() - frame::FOOTER_BYTES))
        } else {
            (bytes, 0.0)
        };
        let mut dst = Heap::with_base(Addr(DST_BASE), capacity);
        match self {
            Engine::Software(ser) => {
                let mut cpu = Cpu::host();
                if S::ENABLED {
                    cpu.track_op_classes(true);
                }
                let root = ser.deserialize(payload, reg, &mut dst, &mut cpu)?;
                let ns = cpu.report().ns;
                if S::ENABLED {
                    emit_cpu_classes(sink, &cpu);
                }
                Ok((dst, root, ns + verify_ns))
            }
            Engine::Cereal(accel) => {
                let r = accel.deserialize(payload, &mut dst)?;
                if S::ENABLED {
                    sink.count("accel.de_requests", 1);
                    sink.count("accel.de_bytes", payload.len() as u64);
                    sink.observe("accel.du_busy_ns", r.run.busy_ns());
                }
                Ok((dst, r.root, r.run.busy_ns() + verify_ns))
            }
        }
    }

    /// The simulated cost of verifying a framed stream of `framed_len`
    /// total bytes (what a receiver pays to *detect* a corrupt frame
    /// before requesting a retry).
    pub fn verify_ns(framed_len: usize) -> f64 {
        frame::crc_ns(framed_len.saturating_sub(frame::FOOTER_BYTES))
    }
}

/// The zero-copy deserialization path for [`Backend::Archive`] streams:
/// CRC-verify the frame (when `checksum`), validate the archive in
/// place, and hand back the [`ArchiveView`] — no destination heap, no
/// reconstruction. The returned time is the full receive-side decode
/// cost on the host-CPU model: CRC scan (when framed) plus validation,
/// which scales with records and references rather than payload bytes.
///
/// Consumers that fold straight off the view (shuffle reducers, the
/// cached-RDD job) pay this instead of
/// [`Engine::try_deserialize_sunk`]'s reconstruction.
///
/// # Errors
/// [`EngineError::Checksum`] on frame damage; [`EngineError::Ser`]
/// (carrying the typed [`serializers::ArchiveError`] rendering) when
/// validation rejects the image.
pub fn validate_archive_sunk<'a, S: Sink>(
    bytes: &'a [u8],
    reg: &KlassRegistry,
    checksum: bool,
    sink: &mut S,
) -> Result<(ArchiveView<'a>, f64), EngineError> {
    let (payload, verify_ns) = if checksum {
        (frame::verify(bytes)?, frame::crc_ns(bytes.len() - frame::FOOTER_BYTES))
    } else {
        (bytes, 0.0)
    };
    let mut cpu = Cpu::host();
    if S::ENABLED {
        cpu.track_op_classes(true);
    }
    let view = ArchiveView::validate(payload, reg, &mut cpu).map_err(SerError::from)?;
    let ns = cpu.report().ns;
    if S::ENABLED {
        emit_cpu_classes(sink, &cpu);
    }
    Ok((view, ns + verify_ns))
}

/// [`validate_archive_sunk`] without telemetry.
///
/// # Errors
/// Same as [`validate_archive_sunk`].
pub fn validate_archive<'a>(
    bytes: &'a [u8],
    reg: &KlassRegistry,
    checksum: bool,
) -> Result<(ArchiveView<'a>, f64), EngineError> {
    validate_archive_sunk(bytes, reg, checksum, &mut NoopSink)
}
