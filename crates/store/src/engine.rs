//! Per-executor serialization engines.
//!
//! Every executor owns one engine: a software [`Serializer`] timed on a
//! fresh [`sim::Cpu`] host-core model per request (the harness's
//! convention), or a private Cereal [`Accelerator`] whose unit models
//! time and schedule requests internally. The engine lives here (rather
//! than in `shuffle`) because both the shuffle service and the block
//! store serialize through it.

use cereal::Accelerator;
use sdheap::{Addr, Heap, KlassRegistry};
use serializers::{JavaSd, JsonLike, Kryo, ProtoLike, Serializer, Skyway};
use sim::Cpu;

/// Destination-heap base for reconstruction (clear of every source).
pub const DST_BASE: u64 = 0x40_0000_0000;

/// A serialization backend an executor can run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Java built-in serialization model.
    Java,
    /// Kryo model.
    Kryo,
    /// Skyway model.
    Skyway,
    /// JSON-text model.
    JsonLike,
    /// Protobuf-like model.
    ProtoLike,
    /// The Cereal accelerator (Table I configuration).
    Cereal,
}

impl Backend {
    /// All backends, software baselines first.
    pub fn all() -> [Backend; 6] {
        [
            Backend::Java,
            Backend::Kryo,
            Backend::Skyway,
            Backend::JsonLike,
            Backend::ProtoLike,
            Backend::Cereal,
        ]
    }

    /// Display name (matching the figure harness).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Java => "Java",
            Backend::Kryo => "Kryo",
            Backend::Skyway => "Skyway",
            Backend::JsonLike => "JsonLike",
            Backend::ProtoLike => "ProtoLike",
            Backend::Cereal => "Cereal",
        }
    }
}

/// Timing of one engine-serialized batch.
pub struct SerTiming {
    /// Time the engine was busy with this request.
    pub busy_ns: f64,
    /// Completion time on the engine's own timeline (accelerators
    /// schedule internally across units); `None` for the serial
    /// one-core software path.
    pub done_ns: Option<f64>,
}

/// One executor's engine.
pub enum Engine {
    /// A software serializer baseline.
    Software(Box<dyn Serializer>),
    /// A private Cereal accelerator.
    Cereal(Box<Accelerator>),
}

impl Engine {
    /// Builds the engine for `backend`, registering every class of `reg`
    /// with the accelerator's hardware table when applicable.
    pub fn new(backend: Backend, reg: &KlassRegistry) -> Engine {
        match backend {
            Backend::Java => Engine::Software(Box::new(JavaSd::new())),
            Backend::Kryo => Engine::Software(Box::new(Kryo::new())),
            Backend::Skyway => Engine::Software(Box::new(Skyway::new())),
            Backend::JsonLike => Engine::Software(Box::new(JsonLike::new())),
            Backend::ProtoLike => Engine::Software(Box::new(ProtoLike::new())),
            Backend::Cereal => {
                let mut accel = Accelerator::paper();
                accel.register_all(reg).expect("class table sized for workload");
                Engine::Cereal(Box::new(accel))
            }
        }
    }

    /// Serializes the graph at `root`, returning the stream and timing.
    pub fn serialize(
        &mut self,
        heap: &mut Heap,
        reg: &KlassRegistry,
        root: Addr,
    ) -> (Vec<u8>, SerTiming) {
        match self {
            Engine::Software(ser) => {
                let mut cpu = Cpu::host();
                let bytes = ser
                    .serialize(heap, reg, root, &mut cpu)
                    .expect("workload registers every class");
                let busy_ns = cpu.report().ns;
                (bytes, SerTiming { busy_ns, done_ns: None })
            }
            Engine::Cereal(accel) => {
                let r = accel
                    .serialize(heap, reg, root)
                    .expect("workload registers every class");
                let t = SerTiming {
                    busy_ns: r.run.busy_ns(),
                    done_ns: Some(r.run.end_ns),
                };
                (r.bytes, t)
            }
        }
    }

    /// Reconstructs a stream into a fresh destination heap; returns the
    /// heap, the root, and the request's busy time.
    pub fn deserialize(
        &mut self,
        bytes: &[u8],
        reg: &KlassRegistry,
        capacity: u64,
    ) -> (Heap, Addr, f64) {
        let mut dst = Heap::with_base(Addr(DST_BASE), capacity);
        match self {
            Engine::Software(ser) => {
                let mut cpu = Cpu::host();
                let root = ser
                    .deserialize(bytes, reg, &mut dst, &mut cpu)
                    .expect("stream produced by the matching serializer");
                let ns = cpu.report().ns;
                (dst, root, ns)
            }
            Engine::Cereal(accel) => {
                let r = accel
                    .deserialize(bytes, &mut dst)
                    .expect("stream produced by the accelerator");
                (dst, r.root, r.run.busy_ns())
            }
        }
    }
}
