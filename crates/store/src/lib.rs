//! `store` — a simulated block manager: serialized block caching with
//! LRU eviction, disk spill, and lineage recomputation.
//!
//! Spark keeps its cached RDDs, broadcast variables and shuffle outputs
//! in a `BlockManager`: a bounded memory region of blocks that evicts
//! least-recently-used entries to disk — or drops them and recomputes
//! from lineage — under pressure. With `MEMORY_SER` storage, every
//! block is a *serialized* object graph, so every cache read pays a
//! deserialization and every recomputation pays a serialization: the
//! block manager is where the paper's serialization tax compounds
//! across iterations. This crate closes that loop over the sibling
//! crates' models:
//!
//! * [`Engine`] — per-executor serialization engines (any software
//!   [`serializers::Serializer`] timed on the [`sim::Cpu`] host model,
//!   or a private Cereal accelerator), shared with the `shuffle` crate;
//! * [`BlockStore`] — the block manager itself: bounded memory, LRU
//!   eviction, spill to a [`sim::Disk`] seek + bandwidth time-bucket
//!   ledger, and a [`MissPolicy`] choosing between disk fetch and
//!   lineage recomputation (with [`MissPolicy::Auto`] comparing the
//!   modeled costs). The spill file holds real bytes: reloads are
//!   byte-identical, test-enforced per backend;
//! * [`rdd`] — an iterative Spark-like consumer: a cached
//!   [`workloads::AggConfig`] dataset re-read over N passes at several
//!   memory-budget fractions, charging deserialization on every hit,
//!   disk time on every fetch, and rebuild + GC pressure
//!   ([`sdheap::GcStats::simulated_cost_ns`]) + re-serialization on
//!   every recomputation;
//! * [`report`] — deterministic JSON reports, byte-identical for any
//!   worker-thread count ([`par_map`] fans out partition builds; the
//!   store simulation itself is strictly sequential).

pub mod block;
pub mod engine;
pub mod par;
pub mod rdd;
pub mod report;

pub use block::{
    Access, AccessOutcome, BlockSource, BlockStore, MissPolicy, NoLineage, StoreConfig,
    StoreError, StoreStats,
};
pub use engine::{
    validate_archive, validate_archive_sunk, Backend, Engine, EngineError, SerTiming, DST_BASE,
};
pub use par::par_map;
pub use rdd::{
    build_part, run_rdd, run_rdd_sunk, AccessPattern, PartBuild, PassStats, RddConfig, RddOutcome,
};
pub use report::{run_suite, RunRecord, StoreReport};
