//! Deterministic indexed fan-out over real threads.
//!
//! The same shape as the experiment harness's worker pool: an atomic
//! work counter hands out indices, each result lands in its own slot,
//! and the caller reads the slots back in index order — so the output is
//! independent of thread interleaving and of the worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` on up to `jobs` threads; returns results in index
/// order.
///
/// # Panics
/// Panics if a worker panicked (the panic propagates).
pub fn par_map<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.max(1).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for jobs in [1, 2, 8, 64] {
            assert_eq!(par_map(jobs, 37, |i| i * i), expect, "{jobs} jobs");
        }
    }

    #[test]
    fn zero_items_is_fine() {
        assert!(par_map(4, 0, |i| i).is_empty());
    }
}
