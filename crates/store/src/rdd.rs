//! An iterative Spark-like job over a cached, serialized dataset.
//!
//! The job materializes an [`workloads::AggConfig`] dataset as one
//! serialized block per partition in a [`BlockStore`], then re-reads the
//! whole dataset for `passes` iterations — the canonical iterative
//! workload (e.g. gradient descent over a cached training set) that
//! Spark's `MEMORY_SER` storage level serves. Every pass pays
//! deserialization on hits (serialized caching trades CPU for space —
//! the paper's motivation), disk time on fetches, and full lineage
//! recomputation (graph rebuild + GC pressure + re-serialization) on
//! dropped blocks.
//!
//! Determinism: partition builds fan out over real threads
//! ([`RddConfig::jobs`]) but produce only per-partition values; the
//! store simulation itself is a second, strictly sequential phase over
//! those values, so every reported number is byte-identical for any job
//! count (test-enforced).

use std::collections::BTreeMap;

use sdheap::gc;
use sdheap::{Addr, Heap, KlassRegistry};
use sim::{DiskConfig, FaultConfig};
use telemetry::ids::{DRIVER_PID, T_DISK, T_MAIN};
use telemetry::{EntityId, FlowEvent, Instant, NoopSink, Sink, Span};
use workloads::AggConfig;

use crate::block::{
    AccessOutcome, BlockSource, BlockStore, MissPolicy, StoreConfig, StoreError, StoreStats,
};
use crate::engine::{Backend, Engine};
use crate::par::par_map;

/// Order in which a pass visits the cached partitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessPattern {
    /// Every partition once, in order — the full-scan iteration.
    Scan,
    /// `partitions` Zipf-distributed samples per pass (hot partitions
    /// re-read, cold ones starved) with the given skew exponent.
    Zipf(f64),
}

impl AccessPattern {
    /// Display label for reports.
    pub fn label(&self) -> String {
        match self {
            AccessPattern::Scan => "scan".to_string(),
            AccessPattern::Zipf(theta) => format!("zipf({theta:.2})"),
        }
    }
}

/// Cached-RDD job configuration.
#[derive(Clone, Copy, Debug)]
pub struct RddConfig {
    /// The dataset; one block per mapper partition.
    pub agg: AggConfig,
    /// Serialization backend for every block.
    pub backend: Backend,
    /// Memory region as a fraction of the dataset's serialized size.
    pub memory_fraction: f64,
    /// Re-read passes after materialization.
    pub passes: usize,
    /// Eviction/miss policy.
    pub policy: MissPolicy,
    /// Spill device model.
    pub disk: DiskConfig,
    /// Pass access order.
    pub access: AccessPattern,
    /// Worker threads for partition builds (does not affect results).
    pub jobs: usize,
    /// Whether blocks carry the [`sdformat::frame`] CRC footer (sealed
    /// at serialization, verified on every read).
    pub checksum: bool,
    /// Spill-reload fault injection (`None` = fault-free).
    pub fault: Option<FaultConfig>,
}

/// One partition, built and measured (phase 1, parallel).
pub struct PartBuild {
    /// The serialized block.
    pub bytes: Vec<u8>,
    /// Engine busy time serializing the block.
    pub ser_ns: f64,
    /// Engine busy time deserializing the block (paid on every re-read).
    pub de_ns: f64,
    /// Lineage rebuild cost: GC pressure of reconstructing the graph
    /// plus re-serialization.
    pub recompute_ns: f64,
    /// Per-key `(count, sum)` folded from the reconstructed heap.
    pub fold: BTreeMap<u64, (u64, f64)>,
}

/// Per-pass counters (deltas over the pass).
#[derive(Clone, Copy, Debug, Default)]
pub struct PassStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses served from disk.
    pub disk_fetches: u64,
    /// Accesses recomputed from lineage.
    pub recomputes: u64,
    /// Simulated time the pass took (store time + deserialization).
    pub ns: f64,
}

/// Everything one cached-RDD job produced.
pub struct RddOutcome {
    /// Serialized dataset size (sum of block lengths).
    pub dataset_bytes: u64,
    /// The store's memory budget.
    pub budget_bytes: u64,
    /// Simulated time to build, serialize and cache every partition.
    pub materialize_ns: f64,
    /// Per-pass counters, in pass order.
    pub passes: Vec<PassStats>,
    /// End-to-end simulated time (materialization + every pass).
    pub total_ns: f64,
    /// Store lifetime counters.
    pub store: StoreStats,
    /// Spill-device read bytes.
    pub disk_read_bytes: u64,
    /// Spill-device write bytes.
    pub disk_write_bytes: u64,
    /// Spill-device seeks.
    pub disk_seeks: u64,
    /// Whether every reconstructed fold matched the source data.
    pub fold_ok: bool,
}

/// Coalesces a partition's records into one `Object[]` batch root.
fn coalesce(heap: &mut Heap, reg: &KlassRegistry, batch_klass: sdheap::KlassId, records: &[Addr]) -> Addr {
    let batch = heap
        .alloc_array(reg, batch_klass, records.len())
        .expect("heap capacity covers the coalesced batch");
    for (j, &r) in records.iter().enumerate() {
        heap.set_array_elem(batch, j, r.get());
    }
    batch
}

/// Folds `(count, sum)` per key over a batch root.
fn fold_batch(heap: &Heap, root: Addr) -> BTreeMap<u64, (u64, f64)> {
    let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    for j in 0..heap.array_len(root) {
        let rec = Addr(heap.array_elem(root, j));
        let key = heap.field(rec, 0);
        let value = f64::from_bits(heap.field(rec, 1));
        let e = fold.entry(key).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += value;
    }
    fold
}

/// Rebuilds partition `m` from lineage: graph construction, coalescing,
/// a fresh engine's serialization, and the GC pressure of the rebuild
/// ([`sdheap::GcStats::simulated_cost_ns`] over the live batch). Returns
/// the stream, its engine busy time, and the total rebuild cost.
fn rebuild(cfg: &RddConfig, m: usize) -> (Vec<u8>, f64, f64, Heap, KlassRegistry, Addr) {
    let part = cfg.agg.build_partition(m);
    let mut heap = part.heap;
    let reg = part.reg;
    let mut engine = Engine::new(cfg.backend, &reg);
    if cfg.backend == Backend::Cereal {
        // Play the GC's role once up front, as the harness does: clear
        // any stale serialization metadata before hardware serialization.
        heap.gc_clear_serialization_metadata(&reg);
    }
    let batch = coalesce(&mut heap, &reg, part.batch_klass, &part.records);
    let (bytes, t) = engine.serialize_framed(&mut heap, &reg, batch, cfg.checksum);
    let (_, _, stats) =
        gc::collect(&heap, &reg, &[batch]).expect("live batch fits the semispace");
    let recompute_ns = stats.simulated_cost_ns() + t.busy_ns;
    (bytes, t.busy_ns, recompute_ns, heap, reg, batch)
}

/// Folds a cached [`Backend::Archive`] block in place: one validation
/// pass over the image, then reads straight off the wire bytes.
/// Returns the fold and the zero-copy decode cost (CRC verify when
/// framed + validation).
fn fold_archive_block(
    bytes: &[u8],
    reg: &KlassRegistry,
    checksum: bool,
) -> (BTreeMap<u64, (u64, f64)>, f64) {
    let (view, de_ns) =
        crate::engine::validate_archive(bytes, reg, checksum).expect("cached block is intact");
    let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    let root = view.root().expect("cached batch is non-empty");
    for j in 0..view.array_len(root) {
        let rec = view.array_elem_ref(root, j).expect("batch records are non-null");
        let key = view.field(rec, 0);
        let value = f64::from_bits(view.field(rec, 1));
        let e = fold.entry(key).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += value;
    }
    (fold, de_ns)
}

/// Builds and measures partition `m` (phase 1).
pub fn build_part(cfg: &RddConfig, m: usize) -> PartBuild {
    let (bytes, ser_ns, recompute_ns, heap, reg, batch) = rebuild(cfg, m);
    let src_fold = fold_batch(&heap, batch);
    let mut engine = Engine::new(cfg.backend, &reg);
    let (dheap, droot, de_ns) = engine
        .try_deserialize(&bytes, &reg, cfg.agg.heap_capacity(), cfg.checksum)
        .expect("freshly serialized block round-trips");
    let fold = fold_batch(&dheap, droot);
    assert_eq!(fold, src_fold, "partition {m}: reconstruction changed the fold");
    if cfg.backend == Backend::Archive {
        // Zero-copy re-reads: every pass folds off the validated view
        // instead of reconstructing, so the per-read cost is the
        // validate-only time — after proving, on every run, that the
        // in-place fold is bit-identical to the reconstruction fold.
        let (zc_fold, zc_de_ns) = fold_archive_block(&bytes, &reg, cfg.checksum);
        assert_eq!(zc_fold, fold, "partition {m}: zero-copy fold diverged from reconstruction");
        return PartBuild { bytes, ser_ns, de_ns: zc_de_ns, recompute_ns, fold };
    }
    PartBuild { bytes, ser_ns, de_ns, recompute_ns, fold }
}

/// Lineage for the job's blocks: really rebuilds the partition and
/// asserts the stream is byte-identical to what was cached.
struct Lineage<'a> {
    cfg: &'a RddConfig,
    parts: &'a [PartBuild],
}

impl BlockSource for Lineage<'_> {
    fn recompute(&mut self, id: usize) -> Result<(Vec<u8>, f64), StoreError> {
        let (bytes, _, recompute_ns, _, _, _) = rebuild(self.cfg, id);
        assert_eq!(
            bytes, self.parts[id].bytes,
            "partition {id}: lineage recomputation must reproduce the stream"
        );
        Ok((bytes, recompute_ns))
    }
}

/// Books the store-counter deltas one `put`/`get` produced as telemetry
/// counters (and an `evict` instant when the operation evicted blocks),
/// so `store.*` counters are derived at the event sites rather than
/// copied from the final [`StoreStats`].
fn book_store_deltas<S: Sink>(sink: &mut S, before: &StoreStats, after: &StoreStats, now_ns: f64) {
    if after.evictions > before.evictions {
        let blocks = after.evictions - before.evictions;
        let bytes = after.evicted_bytes - before.evicted_bytes;
        sink.count("store.evictions", blocks);
        sink.count("store.evicted_bytes", bytes);
        sink.instant(Instant {
            entity: EntityId { pid: DRIVER_PID, tid: T_MAIN },
            name: "evict",
            t_ns: now_ns,
            attrs: vec![("blocks", blocks.into()), ("bytes", bytes.into())],
        });
    }
    if after.spills > before.spills {
        sink.count("store.spills", after.spills - before.spills);
        sink.count("store.spilled_bytes", after.spilled_bytes - before.spilled_bytes);
    }
    if after.read_retries > before.read_retries {
        sink.count("store.read_retries", after.read_retries - before.read_retries);
    }
    if after.checksum_errors > before.checksum_errors {
        sink.count("store.checksum_errors", after.checksum_errors - before.checksum_errors);
    }
}

/// The partition visit order of pass `pass`.
fn pass_order(cfg: &RddConfig, pass: usize) -> Vec<usize> {
    let n = cfg.agg.mappers;
    match cfg.access {
        AccessPattern::Scan => (0..n).collect(),
        AccessPattern::Zipf(theta) => {
            // SkewSampler reproduces the historical Zipf::new + Rng::new
            // stream draw for draw, so report bytes are unchanged.
            let mut skew =
                workloads::SkewSampler::new(n as u64, theta, cfg.agg.seed ^ (0xD15C_0000 + pass as u64));
            (0..n).map(|_| skew.next() as usize).collect()
        }
    }
}

/// Runs the cached-RDD job: parallel partition builds, then a sequential
/// store simulation (materialize + `passes` re-reads).
///
/// # Errors
/// Propagates [`StoreError`] from faulted accesses the store cannot
/// recover (e.g. corruption injected without checksums).
pub fn run_rdd(cfg: &RddConfig) -> Result<RddOutcome, StoreError> {
    run_rdd_sunk(cfg, &mut NoopSink)
}

/// [`run_rdd`] with a telemetry sink: the sequential phase-2 driver
/// timeline is emitted as spans on the driver entity — one
/// `materialize` span per partition, `read.fetch`/`read.recompute`
/// spans and `hit` instants per access, `deserialize` spans for every
/// cache read, `evict` instants, and the spill device's busy windows as
/// `disk.read`/`disk.write` spans on the driver's disk lane. Counters
/// (`store.*`) are booked at the event sites so they reconcile with
/// [`StoreStats`] by construction. The returned outcome is identical to
/// the untraced path for any sink.
///
/// # Errors
/// Same as [`run_rdd`].
pub fn run_rdd_sunk<S: Sink>(cfg: &RddConfig, sink: &mut S) -> Result<RddOutcome, StoreError> {
    let n = cfg.agg.mappers;
    let parts: Vec<PartBuild> = par_map(cfg.jobs, n, |m| build_part(cfg, m));

    // Round-trip check: merged folds (partition order) must equal the
    // dataset's expected aggregate — exact counts, value sums to f64
    // accumulation-order tolerance.
    let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
    for p in &parts {
        for (&k, &(c, s)) in &p.fold {
            let e = fold.entry(k).or_insert((0, 0.0));
            e.0 += c;
            e.1 += s;
        }
    }
    let expected = cfg.agg.expected_fold();
    let fold_ok = fold.len() == expected.len()
        && fold.iter().zip(expected.iter()).all(|((k1, (c1, s1)), (k2, (c2, s2)))| {
            k1 == k2 && c1 == c2 && (s1 - s2).abs() <= 1e-6 * s2.abs().max(1.0)
        });

    let dataset_bytes: u64 = parts.iter().map(|p| p.bytes.len() as u64).sum();
    let budget_bytes = (dataset_bytes as f64 * cfg.memory_fraction).ceil() as u64;
    let mut store = BlockStore::new(StoreConfig {
        memory_budget: budget_bytes,
        disk: cfg.disk,
        policy: cfg.policy,
        fault: cfg.fault,
        checksum: cfg.checksum,
    });
    let driver = EntityId { pid: DRIVER_PID, tid: T_MAIN };
    if S::ENABLED {
        sink.name_process(DRIVER_PID, "driver");
        sink.name_thread(DRIVER_PID, T_MAIN, "driver");
        sink.name_thread(DRIVER_PID, T_DISK, "block-store disk");
        store.record_disk_tape();
    }

    // Phase 2: one sequential driver timeline.
    let mut now = 0.0f64;
    for (m, p) in parts.iter().enumerate() {
        let start = now;
        let before = store.stats();
        now += p.recompute_ns; // initial build + serialize
        let (id, done) = store.put(p.bytes.clone(), p.recompute_ns, now);
        debug_assert_eq!(id, m);
        now = done;
        if S::ENABLED {
            sink.count("store.puts", 1);
            sink.span(Span {
                entity: driver,
                name: "materialize",
                t0_ns: start,
                t1_ns: now,
                attrs: vec![
                    ("partition", (m as u64).into()),
                    ("bytes", (p.bytes.len() as u64).into()),
                ],
            });
            book_store_deltas(sink, &before, &store.stats(), now);
        }
    }
    let materialize_ns = now;

    let mut lineage = Lineage { cfg, parts: &parts };
    let mut passes = Vec::with_capacity(cfg.passes);
    let mut flow_seq = 0u64;
    for pass in 0..cfg.passes {
        let before = store.stats();
        let start = now;
        for m in pass_order(cfg, pass) {
            let at = now;
            let pre = store.stats();
            let access = store.get(m, now, &mut lineage)?;
            now = access.done_ns;
            if S::ENABLED {
                let part = ("partition", telemetry::AttrValue::from(m as u64));
                match access.outcome {
                    AccessOutcome::Hit => {
                        sink.count("store.hits", 1);
                        sink.instant(Instant {
                            entity: driver,
                            name: "hit",
                            t_ns: at,
                            attrs: vec![part],
                        });
                    }
                    AccessOutcome::DiskFetch => {
                        sink.count("store.disk_fetches", 1);
                        sink.span(Span {
                            entity: driver,
                            name: "read.fetch",
                            t0_ns: at,
                            t1_ns: now,
                            attrs: vec![part],
                        });
                        // Causal edge: the spill device's read feeds
                        // the driver's resume.
                        sink.flow(FlowEvent {
                            id: flow_seq,
                            name: "flow.spill",
                            src: EntityId { pid: DRIVER_PID, tid: T_DISK },
                            t0_ns: at,
                            dst: driver,
                            t1_ns: now,
                        });
                        flow_seq += 1;
                    }
                    AccessOutcome::Recomputed => {
                        sink.count("store.recomputes", 1);
                        sink.span(Span {
                            entity: driver,
                            name: "read.recompute",
                            t0_ns: at,
                            t1_ns: now,
                            attrs: vec![part],
                        });
                    }
                }
                book_store_deltas(sink, &pre, &store.stats(), now);
            }
            match access.outcome {
                // Serialized caching pays deserialization on every read;
                // recomputation hands over the live graph directly.
                AccessOutcome::Hit | AccessOutcome::DiskFetch => {
                    if S::ENABLED {
                        sink.span(Span {
                            entity: driver,
                            name: "deserialize",
                            t0_ns: now,
                            t1_ns: now + parts[m].de_ns,
                            attrs: vec![("partition", (m as u64).into())],
                        });
                    }
                    now += parts[m].de_ns;
                }
                AccessOutcome::Recomputed => {}
            }
        }
        let after = store.stats();
        if S::ENABLED {
            sink.observe("store.pass_ns", now - start);
        }
        passes.push(PassStats {
            hits: after.hits - before.hits,
            disk_fetches: after.disk_fetches - before.disk_fetches,
            recomputes: after.recomputes - before.recomputes,
            ns: now - start,
        });
    }

    if S::ENABLED {
        let lane = EntityId { pid: DRIVER_PID, tid: T_DISK };
        for w in store.take_disk_tape() {
            sink.span(Span {
                entity: lane,
                name: if w.write { "disk.write" } else { "disk.read" },
                t0_ns: w.start_ns,
                t1_ns: w.end_ns,
                attrs: vec![("bytes", w.bytes.into())],
            });
        }
        sink.count("store.disk_read_bytes", store.disk().read_bytes());
        sink.count("store.disk_write_bytes", store.disk().write_bytes());
        sink.count("store.disk_seeks", store.disk().seeks());
    }

    Ok(RddOutcome {
        dataset_bytes,
        budget_bytes,
        materialize_ns,
        passes,
        total_ns: now,
        store: store.stats(),
        disk_read_bytes: store.disk().read_bytes(),
        disk_write_bytes: store.disk().write_bytes(),
        disk_seeks: store.disk().seeks(),
        fold_ok,
    })
}
