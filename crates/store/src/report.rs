//! Store-suite reports and their JSON rendering.
//!
//! Every field is derived from simulated clocks and deterministic
//! counters — nothing wall-clock, nothing machine-dependent — so the
//! rendered JSON is byte-identical across runs and job counts
//! (test- and CI-enforced for `--jobs 1` vs `--jobs 4`).

use crate::block::StoreError;
use crate::rdd::{run_rdd, AccessPattern, RddConfig, RddOutcome};

/// One cached-RDD run: the knobs that varied plus the outcome.
pub struct RunRecord {
    /// Backend display name.
    pub backend: &'static str,
    /// Memory budget as a fraction of the serialized dataset.
    pub memory_fraction: f64,
    /// Policy display name.
    pub policy: &'static str,
    /// Spill-device display name.
    pub disk: &'static str,
    /// Access-pattern label.
    pub access: String,
    /// Whether the run used checksummed frames or fault injection (the
    /// fault fields render only when set, so fault-free reports stay
    /// byte-identical to the pre-fault harness).
    pub faulted: bool,
    /// The run's measurements.
    pub outcome: RddOutcome,
}

impl RunRecord {
    /// Runs one configuration and records it.
    ///
    /// # Errors
    /// Propagates [`StoreError`] from unrecoverable faulted accesses.
    pub fn run(cfg: &RddConfig) -> Result<RunRecord, StoreError> {
        Ok(RunRecord {
            backend: cfg.backend.name(),
            memory_fraction: cfg.memory_fraction,
            policy: cfg.policy.name(),
            disk: cfg.disk.name,
            access: cfg.access.label(),
            faulted: cfg.checksum || cfg.fault.is_some_and(|f| f.enabled()),
            outcome: run_rdd(cfg)?,
        })
    }

    fn to_json(&self) -> String {
        let o = &self.outcome;
        let s = &o.store;
        // Appended only for faulted/checksummed runs: fault-free JSON is
        // byte-identical to the pre-fault harness.
        let fault = if self.faulted {
            format!(
                ",\n\x20     \"read_retries\": {}, \"retry_ns\": {:.3}, \"checksum_errors\": {}",
                s.read_retries, s.retry_ns, s.checksum_errors
            )
        } else {
            String::new()
        };
        let passes: Vec<String> = o
            .passes
            .iter()
            .map(|p| {
                format!(
                    "{{\"hits\": {}, \"disk_fetches\": {}, \"recomputes\": {}, \"ns\": {:.3}}}",
                    p.hits, p.disk_fetches, p.recomputes, p.ns
                )
            })
            .collect();
        format!(
            "    {{\"backend\": \"{}\", \"memory_fraction\": {:.2}, \"policy\": \"{}\",\n\
             \x20     \"disk\": \"{}\", \"access\": \"{}\",\n\
             \x20     \"dataset_bytes\": {}, \"budget_bytes\": {},\n\
             \x20     \"hits\": {}, \"disk_fetches\": {}, \"recomputes\": {},\n\
             \x20     \"evictions\": {}, \"evicted_bytes\": {}, \"spills\": {}, \"spilled_bytes\": {},\n\
             \x20     \"disk_read_bytes\": {}, \"disk_write_bytes\": {}, \"disk_seeks\": {},\n\
             \x20     \"materialize_ns\": {:.3}, \"total_ns\": {:.3}, \"fold_ok\": {}{},\n\
             \x20     \"passes\": [{}]}}",
            self.backend,
            self.memory_fraction,
            self.policy,
            self.disk,
            self.access,
            o.dataset_bytes,
            o.budget_bytes,
            s.hits,
            s.disk_fetches,
            s.recomputes,
            s.evictions,
            s.evicted_bytes,
            s.spills,
            s.spilled_bytes,
            o.disk_read_bytes,
            o.disk_write_bytes,
            o.disk_seeks,
            o.materialize_ns,
            o.total_ns,
            o.fold_ok,
            fault,
            passes.join(", ")
        )
    }
}

/// A full store-suite run.
pub struct StoreReport {
    /// Dataset partitions (= mappers).
    pub partitions: usize,
    /// Records per partition.
    pub records_per_partition: usize,
    /// Distinct aggregation keys.
    pub distinct_keys: u64,
    /// Dataset seed.
    pub seed: u64,
    /// Re-read passes per run.
    pub passes: usize,
    /// The runs, in matrix order.
    pub runs: Vec<RunRecord>,
}

impl StoreReport {
    /// Renders the report as deterministic JSON (job count and wall
    /// clock deliberately excluded).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.runs.iter().map(RunRecord::to_json).collect();
        format!(
            "{{\n\
             \x20 \"generated_by\": \"block store suite\",\n\
             \x20 \"config\": {{\n\
             \x20   \"partitions\": {}, \"records_per_partition\": {}, \"distinct_keys\": {},\n\
             \x20   \"seed\": {}, \"passes\": {}\n\
             \x20 }},\n\
             \x20 \"runs\": [\n{}\n\x20 ]\n\
             }}\n",
            self.partitions,
            self.records_per_partition,
            self.distinct_keys,
            self.seed,
            self.passes,
            rows.join(",\n")
        )
    }
}

/// The standard suite matrix: every requested backend at every memory
/// fraction (scan access, auto policy, SSD), then a policy-crossover
/// section (HDD vs NVMe × fetch/recompute/auto on Kryo), then a
/// skewed-re-read section showing the hit-rate gradient under Zipf
/// access.
pub fn run_suite(
    base: &RddConfig,
    backends: &[crate::Backend],
    fractions: &[f64],
) -> Result<StoreReport, StoreError> {
    let mut runs = Vec::new();
    for &backend in backends {
        for &frac in fractions {
            runs.push(RunRecord::run(&RddConfig {
                backend,
                memory_fraction: frac,
                ..*base
            })?);
        }
    }
    // Policy crossover: a slow-seek device flips the auto policy to
    // recomputation, a fast one to fetching.
    for disk in [sim::DiskConfig::hdd(), sim::DiskConfig::nvme()] {
        for policy in [
            crate::MissPolicy::Fetch,
            crate::MissPolicy::Recompute,
            crate::MissPolicy::Auto,
        ] {
            runs.push(RunRecord::run(&RddConfig {
                backend: crate::Backend::Kryo,
                memory_fraction: 0.5,
                policy,
                disk,
                ..*base
            })?);
        }
    }
    // Skewed re-reads: hot partitions stay resident, the tail thrashes.
    for &frac in fractions {
        runs.push(RunRecord::run(&RddConfig {
            backend: crate::Backend::Kryo,
            memory_fraction: frac,
            access: AccessPattern::Zipf(1.1),
            ..*base
        })?);
    }
    Ok(StoreReport {
        partitions: base.agg.mappers,
        records_per_partition: base.agg.records_per_mapper,
        distinct_keys: base.agg.distinct_keys,
        seed: base.agg.seed,
        passes: base.passes,
        runs,
    })
}
