//! Store-suite reports and their JSON rendering.
//!
//! Every field is derived from simulated clocks and deterministic
//! counters — nothing wall-clock, nothing machine-dependent — so the
//! rendered JSON is byte-identical across runs and job counts
//! (test- and CI-enforced for `--jobs 1` vs `--jobs 4`). All rendering
//! goes through the workspace's one [`JsonWriter`].

use crate::block::StoreError;
use crate::rdd::{run_rdd, AccessPattern, RddConfig, RddOutcome};
use telemetry::JsonWriter;

/// One cached-RDD run: the knobs that varied plus the outcome.
pub struct RunRecord {
    /// Backend display name.
    pub backend: &'static str,
    /// Memory budget as a fraction of the serialized dataset.
    pub memory_fraction: f64,
    /// Policy display name.
    pub policy: &'static str,
    /// Spill-device display name.
    pub disk: &'static str,
    /// Access-pattern label.
    pub access: String,
    /// Whether the run used checksummed frames or fault injection (the
    /// fault fields render only when set, so fault-free reports stay
    /// byte-identical to the pre-fault harness).
    pub faulted: bool,
    /// The run's measurements.
    pub outcome: RddOutcome,
}

impl RunRecord {
    /// Runs one configuration and records it.
    ///
    /// # Errors
    /// Propagates [`StoreError`] from unrecoverable faulted accesses.
    pub fn run(cfg: &RddConfig) -> Result<RunRecord, StoreError> {
        Ok(RunRecord {
            backend: cfg.backend.name(),
            memory_fraction: cfg.memory_fraction,
            policy: cfg.policy.name(),
            disk: cfg.disk.name,
            access: cfg.access.label(),
            faulted: cfg.checksum || cfg.fault.is_some_and(|f| f.enabled()),
            outcome: run_rdd(cfg)?,
        })
    }

    fn render(&self, w: &mut JsonWriter) {
        let o = &self.outcome;
        let s = &o.store;
        w.begin_obj();
        w.field_str("backend", self.backend);
        w.field_f64("memory_fraction", self.memory_fraction, 2);
        w.field_str("policy", self.policy);
        w.field_str("disk", self.disk);
        w.field_str("access", &self.access);
        w.field_u64("dataset_bytes", o.dataset_bytes);
        w.field_u64("budget_bytes", o.budget_bytes);
        w.field_u64("hits", s.hits);
        w.field_u64("disk_fetches", s.disk_fetches);
        w.field_u64("recomputes", s.recomputes);
        w.field_u64("evictions", s.evictions);
        w.field_u64("evicted_bytes", s.evicted_bytes);
        w.field_u64("spills", s.spills);
        w.field_u64("spilled_bytes", s.spilled_bytes);
        w.field_u64("disk_read_bytes", o.disk_read_bytes);
        w.field_u64("disk_write_bytes", o.disk_write_bytes);
        w.field_u64("disk_seeks", o.disk_seeks);
        w.field_f64("materialize_ns", o.materialize_ns, 3);
        w.field_f64("total_ns", o.total_ns, 3);
        w.field_bool("fold_ok", o.fold_ok);
        // Appended only for faulted/checksummed runs: fault-free JSON
        // stays free of the fault fields.
        if self.faulted {
            w.field_u64("read_retries", s.read_retries);
            w.field_f64("retry_ns", s.retry_ns, 3);
            w.field_u64("checksum_errors", s.checksum_errors);
        }
        w.key("passes");
        w.begin_arr();
        for p in &o.passes {
            w.begin_obj();
            w.field_u64("hits", p.hits);
            w.field_u64("disk_fetches", p.disk_fetches);
            w.field_u64("recomputes", p.recomputes);
            w.field_f64("ns", p.ns, 3);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
}

/// A full store-suite run.
pub struct StoreReport {
    /// Dataset partitions (= mappers).
    pub partitions: usize,
    /// Records per partition.
    pub records_per_partition: usize,
    /// Distinct aggregation keys.
    pub distinct_keys: u64,
    /// Dataset seed.
    pub seed: u64,
    /// Re-read passes per run.
    pub passes: usize,
    /// The runs, in matrix order.
    pub runs: Vec<RunRecord>,
}

impl StoreReport {
    /// Renders the report as deterministic JSON (job count and wall
    /// clock deliberately excluded).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("generated_by", "block store suite");
        w.key("config");
        w.begin_obj();
        w.field_u64("partitions", self.partitions as u64);
        w.field_u64("records_per_partition", self.records_per_partition as u64);
        w.field_u64("distinct_keys", self.distinct_keys);
        w.field_u64("seed", self.seed);
        w.field_u64("passes", self.passes as u64);
        w.end_obj();
        w.key("runs");
        w.begin_arr();
        for r in &self.runs {
            r.render(&mut w);
        }
        w.end_arr();
        w.end_obj();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// The standard suite matrix: every requested backend at every memory
/// fraction (scan access, auto policy, SSD), then a policy-crossover
/// section (HDD vs NVMe × fetch/recompute/auto on Kryo), then a
/// skewed-re-read section showing the hit-rate gradient under Zipf
/// access.
pub fn run_suite(
    base: &RddConfig,
    backends: &[crate::Backend],
    fractions: &[f64],
) -> Result<StoreReport, StoreError> {
    let mut runs = Vec::new();
    for &backend in backends {
        for &frac in fractions {
            runs.push(RunRecord::run(&RddConfig {
                backend,
                memory_fraction: frac,
                ..*base
            })?);
        }
    }
    // Policy crossover: a slow-seek device flips the auto policy to
    // recomputation, a fast one to fetching.
    for disk in [sim::DiskConfig::hdd(), sim::DiskConfig::nvme()] {
        for policy in [
            crate::MissPolicy::Fetch,
            crate::MissPolicy::Recompute,
            crate::MissPolicy::Auto,
        ] {
            runs.push(RunRecord::run(&RddConfig {
                backend: crate::Backend::Kryo,
                memory_fraction: 0.5,
                policy,
                disk,
                ..*base
            })?);
        }
    }
    // Skewed re-reads: hot partitions stay resident, the tail thrashes.
    for &frac in fractions {
        runs.push(RunRecord::run(&RddConfig {
            backend: crate::Backend::Kryo,
            memory_fraction: frac,
            access: AccessPattern::Zipf(1.1),
            ..*base
        })?);
    }
    Ok(StoreReport {
        partitions: base.agg.mappers,
        records_per_partition: base.agg.records_per_mapper,
        distinct_keys: base.agg.distinct_keys,
        seed: base.agg.seed,
        passes: base.passes,
        runs,
    })
}
