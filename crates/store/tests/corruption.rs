//! Per-backend corruption detection: for every serialization backend —
//! the six software formats and the Cereal accelerator — a single
//! flipped bit anywhere in a checksummed stream surfaces as a typed
//! checksum error before the backend decodes a byte.

use sdheap::rng::Rng;
use store::{Backend, Engine, EngineError};
use workloads::AggConfig;

fn sample(backend: Backend) -> (Vec<u8>, sdheap::KlassRegistry, u64) {
    let agg = AggConfig {
        mappers: 1,
        records_per_mapper: 48,
        distinct_keys: 8,
        seed: 0xBAD_B17,
        skew: workloads::KeySkew::Uniform,
    };
    let part = agg.build_partition(0);
    let mut heap = part.heap;
    let reg = part.reg;
    let mut engine = Engine::new(backend, &reg);
    if backend == Backend::Cereal {
        heap.gc_clear_serialization_metadata(&reg);
    }
    let batch = heap
        .alloc_array(&reg, part.batch_klass, part.records.len())
        .expect("batch fits");
    for (j, &r) in part.records.iter().enumerate() {
        heap.set_array_elem(batch, j, r.get());
    }
    let (bytes, _) = engine.serialize_framed(&mut heap, &reg, batch, true);
    (bytes, reg, agg.heap_capacity())
}

/// Every backend: an intact checksummed stream round-trips; any single
/// flipped bit is reported as [`EngineError::Checksum`] — never a panic,
/// never a silently wrong reconstruction.
#[test]
fn every_backend_detects_single_bit_corruption() {
    for &backend in Backend::all() {
        let (framed, reg, capacity) = sample(backend);
        let mut engine = Engine::new(backend, &reg);
        engine
            .try_deserialize(&framed, &reg, capacity, true)
            .unwrap_or_else(|e| panic!("{}: intact stream rejected: {e}", backend.name()));

        let mut rng = Rng::new(0xF11B_0000 ^ backend as u64);
        for _ in 0..40 {
            let bit = rng.gen_range_usize(0, framed.len() * 8);
            let mut bad = framed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match engine.try_deserialize(&bad, &reg, capacity, true) {
                Err(EngineError::Checksum(_)) => {}
                Err(e) => panic!(
                    "{}: bit {bit} produced {e} instead of a checksum error",
                    backend.name()
                ),
                Ok(_) => panic!(
                    "{}: bit-{bit} corruption decoded without detection",
                    backend.name()
                ),
            }
        }
    }
}

/// Verification is charged to the simulated clock: a checksummed
/// deserialization is strictly slower than the plain one by the CRC
/// scan cost.
#[test]
fn checksum_verification_costs_simulated_time() {
    let backend = Backend::Kryo;
    let (framed, reg, capacity) = sample(backend);
    let plain = &framed[..framed.len() - sdformat::FOOTER_BYTES];
    let mut engine = Engine::new(backend, &reg);
    let (_, _, ns_plain) = engine.try_deserialize(plain, &reg, capacity, false).unwrap();
    let (_, _, ns_checked) = engine.try_deserialize(&framed, &reg, capacity, true).unwrap();
    let expected = sdformat::crc_ns(plain.len());
    assert!(expected > 0.0);
    assert!(
        (ns_checked - ns_plain - expected).abs() < 1e-9,
        "checksum path must cost exactly crc_ns more ({ns_checked} vs {ns_plain} + {expected})"
    );
}
