//! End-to-end block-store tests: eviction determinism, spill/reload
//! byte-identity per backend, the recompute-vs-fetch policy crossover,
//! and job-count invariance of the suite report.

use sim::DiskConfig;
use store::{
    build_part, run_rdd, run_suite, AccessPattern, Backend, BlockStore, MissPolicy, NoLineage,
    RddConfig, StoreConfig,
};
use workloads::{AggConfig, KeySkew};

fn tiny_agg() -> AggConfig {
    AggConfig {
        mappers: 6,
        records_per_mapper: 64,
        distinct_keys: 16,
        seed: 0x5EED_B10C,
        skew: KeySkew::Uniform,
    }
}

fn tiny(backend: Backend) -> RddConfig {
    RddConfig {
        agg: tiny_agg(),
        backend,
        memory_fraction: 0.5,
        passes: 3,
        policy: MissPolicy::Fetch,
        disk: DiskConfig::ssd(),
        access: AccessPattern::Scan,
        jobs: 1,
        checksum: false,
        fault: None,
    }
}

/// Scanning a half-sized cache evicts deterministically: two identical
/// runs agree on every counter and every simulated nanosecond, and the
/// scan pattern under LRU misses every block (sequential flooding).
#[test]
fn eviction_order_is_deterministic() {
    let cfg = tiny(Backend::Kryo);
    let a = run_rdd(&cfg).unwrap();
    let b = run_rdd(&cfg).unwrap();
    assert_eq!(a.store, b.store);
    assert_eq!(a.total_ns.to_bits(), b.total_ns.to_bits());
    assert_eq!(a.materialize_ns.to_bits(), b.materialize_ns.to_bits());
    assert!(a.fold_ok);
    // A scan over a cache at half the dataset size is LRU's worst case:
    // each block is evicted before its next use, so passes never hit.
    for p in &a.passes {
        assert_eq!(p.hits, 0, "sequential flooding cannot hit under LRU");
        assert_eq!(p.disk_fetches, cfg.agg.mappers as u64);
    }
    assert!(a.store.evictions > 0);
    assert!(a.disk_write_bytes > 0, "fetch policy spills evictions");
}

/// For every backend, a block that round-trips through the spill file
/// comes back byte-identical, and its re-read deserializes to the same
/// fold.
#[test]
fn spill_and_reload_is_byte_identical_per_backend() {
    for &backend in Backend::all() {
        let cfg = tiny(backend);
        let parts: Vec<_> = (0..cfg.agg.mappers).map(|m| build_part(&cfg, m)).collect();
        // Room for one block at a time: every put evicts the previous
        // block to disk.
        let budget = parts.iter().map(|p| p.bytes.len() as u64).max().unwrap();
        let mut store =
            BlockStore::new(StoreConfig::plain(budget, DiskConfig::ssd(), MissPolicy::Fetch));
        let mut now = 0.0;
        for p in &parts {
            let (_, done) = store.put(p.bytes.clone(), p.recompute_ns, now);
            now = done;
        }
        for (m, p) in parts.iter().enumerate() {
            let access = store.get(m, now, &mut NoLineage).unwrap();
            now = access.done_ns;
            assert_eq!(
                store.bytes(m).unwrap(),
                &p.bytes[..],
                "{}: block {m} corrupted by spill/reload",
                backend.name()
            );
        }
        assert!(
            store.stats().disk_fetches > 0,
            "{}: the budget must force disk round trips",
            backend.name()
        );
    }
}

/// The auto policy lands on the cheaper side of the miss: against a
/// slow-seek HDD it recomputes from lineage, against NVMe it spills and
/// fetches — and it is never slower than both fixed policies.
#[test]
fn auto_policy_crosses_over_with_the_disk() {
    let base = tiny(Backend::Kryo);

    let hdd =
        run_rdd(&RddConfig { policy: MissPolicy::Auto, disk: DiskConfig::hdd(), ..base }).unwrap();
    assert!(hdd.store.recomputes > 0, "HDD seeks dwarf recomputation");
    assert_eq!(hdd.store.spills, 0);
    assert!(hdd.fold_ok);

    let nvme =
        run_rdd(&RddConfig { policy: MissPolicy::Auto, disk: DiskConfig::nvme(), ..base }).unwrap();
    assert!(nvme.store.disk_fetches > 0, "NVMe fetches beat recomputation");
    assert_eq!(nvme.store.recomputes, 0);
    assert!(nvme.fold_ok);

    for (auto, disk) in [(&hdd, DiskConfig::hdd()), (&nvme, DiskConfig::nvme())] {
        let fetch = run_rdd(&RddConfig { policy: MissPolicy::Fetch, disk, ..base }).unwrap();
        let recompute =
            run_rdd(&RddConfig { policy: MissPolicy::Recompute, disk, ..base }).unwrap();
        let best = fetch.total_ns.min(recompute.total_ns);
        assert!(
            auto.total_ns <= best + 1e-6,
            "{}: auto ({:.0} ns) must not lose to the best fixed policy ({:.0} ns)",
            disk.name,
            auto.total_ns,
            best
        );
    }
}

/// Zipf-skewed re-reads keep the hot partitions resident: the hit rate
/// is strictly better than the scan's (which is zero under LRU at this
/// budget).
#[test]
fn skewed_access_hits_where_scans_thrash() {
    let base = tiny(Backend::Kryo);
    let scan = run_rdd(&base).unwrap();
    let zipf = run_rdd(&RddConfig { access: AccessPattern::Zipf(1.2), ..base }).unwrap();
    let scan_hits: u64 = scan.passes.iter().map(|p| p.hits).sum();
    let zipf_hits: u64 = zipf.passes.iter().map(|p| p.hits).sum();
    assert_eq!(scan_hits, 0);
    assert!(zipf_hits > 0, "hot blocks must stay resident under skew");
}

/// The suite report is byte-identical for 1 and 4 worker threads.
#[test]
fn suite_report_is_job_count_invariant() {
    let backends = [Backend::Kryo, Backend::Cereal];
    let fractions = [0.4, 1.0];
    let report = |jobs| {
        let base = RddConfig { jobs, passes: 2, ..tiny(Backend::Kryo) };
        run_suite(&base, &backends, &fractions).unwrap().to_json()
    };
    let one = report(1);
    let four = report(4);
    assert_eq!(one, four, "report must not depend on the worker count");
    assert!(one.contains("\"fold_ok\": true"));
    assert!(!one.contains("\"fold_ok\": false"));
}
