//! Chrome trace-event JSON export.
//!
//! [`chrome_trace`] turns a [`Recorder`] into the trace-event format
//! that Perfetto and `chrome://tracing` load directly: metadata events
//! name each process (executor / device) and thread (work stream),
//! complete events (`"ph": "X"`) render spans, instant events
//! (`"ph": "i"`) render point events, flow events (`"ph": "s"` /
//! `"ph": "f"`) render causal edges as arrows across entities, and
//! counter events (`"ph": "C"`) render timestamped gauge samples as
//! stacked timeline tracks. One event per line, all ordering derived
//! from sorted keys and stable sorts on simulated timestamps — the
//! output is byte-identical for any worker-thread count.

use crate::json::esc;
use crate::span::{Attr, AttrValue, Recorder};
use std::fmt::Write as _;

/// Nanoseconds → the microsecond `ts`/`dur` fields, 3 decimals
/// (nanosecond resolution preserved).
fn us(ns: f64) -> String {
    format!("{:.3}", ns / 1000.0)
}

fn push_args(out: &mut String, attrs: &[Attr]) {
    if attrs.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", esc(k));
        match v {
            AttrValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::F64(x) => {
                let _ = write!(out, "{x:.3}");
            }
            AttrValue::Str(s) => {
                let _ = write!(out, "\"{}\"", esc(s));
            }
        }
    }
    out.push('}');
}

/// Renders the recorder as a Chrome trace-event JSON document.
///
/// Spans become complete events and instants become point events,
/// merged into one stream stably sorted by
/// `(timestamp, pid, tid, name)`; process/thread metadata events come
/// first, sorted by id. Timestamps are microseconds with 3 decimals, so
/// simulated-nanosecond resolution survives the unit conversion.
pub fn chrome_trace(rec: &Recorder) -> String {
    let mut lines: Vec<String> = Vec::new();

    for (pid, name) in &rec.process_names {
        lines.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for ((pid, tid), name) in &rec.thread_names {
        lines.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    // One sortable record per event; the stable sort keeps emission
    // order among exact ties.
    enum Ev<'a> {
        Span(&'a crate::span::Span),
        Instant(&'a crate::span::Instant),
        FlowStart(&'a crate::span::FlowEvent),
        FlowEnd(&'a crate::span::FlowEvent),
        Counter(&'a crate::span::Sample),
    }
    let mut events: Vec<(f64, u32, u32, &'static str, Ev<'_>)> = Vec::new();
    for s in &rec.spans {
        events.push((s.t0_ns, s.entity.pid, s.entity.tid, s.name, Ev::Span(s)));
    }
    for e in &rec.instants {
        events.push((e.t_ns, e.entity.pid, e.entity.tid, e.name, Ev::Instant(e)));
    }
    for f in &rec.flows {
        // The start binds to the slice enclosing `t0_ns` on the source
        // lane, the end to the slice enclosing `t1_ns` on the
        // destination; pushing the start first keeps exact ties stable.
        events.push((f.t0_ns, f.src.pid, f.src.tid, f.name, Ev::FlowStart(f)));
        events.push((f.t1_ns, f.dst.pid, f.dst.tid, f.name, Ev::FlowEnd(f)));
    }
    for c in &rec.samples {
        events.push((c.t_ns, c.entity.pid, c.entity.tid, c.name, Ev::Counter(c)));
    }
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then(a.3.cmp(b.3))
    });

    for (_, pid, tid, name, ev) in &events {
        let mut line = String::new();
        match ev {
            Ev::Span(s) => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\"",
                    us(s.t0_ns),
                    us(s.t1_ns - s.t0_ns),
                    esc(name)
                );
                push_args(&mut line, &s.attrs);
            }
            Ev::Instant(e) => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{}\"",
                    us(e.t_ns),
                    esc(name)
                );
                push_args(&mut line, &e.attrs);
            }
            // Flow ids are scoped by `cat` + `name`, so each emitter's
            // per-subsystem counter stays collision-free in a merged
            // trace.
            Ev::FlowStart(f) => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"id\":{},\"cat\":\"{}\",\"name\":\"{}\"",
                    us(f.t0_ns),
                    f.id,
                    esc(name),
                    esc(name)
                );
            }
            Ev::FlowEnd(f) => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"id\":{},\"cat\":\"{}\",\"name\":\"{}\"",
                    us(f.t1_ns),
                    f.id,
                    esc(name),
                    esc(name)
                );
            }
            Ev::Counter(c) => {
                let _ = write!(
                    line,
                    "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{:.3}}}",
                    us(c.t_ns),
                    esc(name),
                    c.value
                );
            }
        }
        line.push('}');
        lines.push(line);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{EntityId, Instant, Sink, Span};

    #[test]
    fn events_sort_by_time_then_entity() {
        let mut r = Recorder::new();
        r.name_process(2, "b");
        r.name_process(1, "a");
        r.span(Span {
            entity: EntityId { pid: 2, tid: 0 },
            name: "late",
            t0_ns: 2000.0,
            t1_ns: 3000.0,
            attrs: vec![("bytes", 64u64.into())],
        });
        r.span(Span {
            entity: EntityId { pid: 1, tid: 0 },
            name: "early",
            t0_ns: 1000.0,
            t1_ns: 1500.0,
            attrs: Vec::new(),
        });
        r.instant(Instant {
            entity: EntityId { pid: 1, tid: 0 },
            name: "tick",
            t_ns: 1000.0,
            attrs: Vec::new(),
        });
        let json = chrome_trace(&r);
        let lines: Vec<&str> = json.lines().collect();
        // Header, two metadata lines (pid 1 before pid 2), then events.
        assert!(lines[1].contains("\"pid\":1"));
        assert!(lines[2].contains("\"pid\":2"));
        // At 1000 ns the span sorts with the instant; name breaks the
        // tie ("early" < "tick").
        assert!(lines[3].contains("\"name\":\"early\""));
        assert!(lines[4].contains("\"name\":\"tick\""));
        assert!(lines[5].contains("\"name\":\"late\""));
        assert!(lines[5].contains("\"ts\":2.000"));
        assert!(lines[5].contains("\"dur\":1.000"));
        assert!(lines[5].contains("\"args\":{\"bytes\":64}"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}\n"));
    }

    #[test]
    fn flows_and_counters_render() {
        use crate::span::{FlowEvent, Sample};
        let mut r = Recorder::new();
        r.flow(FlowEvent {
            id: 7,
            name: "flow.fetch",
            src: EntityId { pid: 1, tid: 2 },
            t0_ns: 1000.0,
            dst: EntityId { pid: 3, tid: 0 },
            t1_ns: 2500.0,
        });
        r.sample(Sample {
            entity: EntityId { pid: 1, tid: 0 },
            name: "queue_depth",
            t_ns: 1500.0,
            value: 4.0,
        });
        let json = chrome_trace(&r);
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines[1].contains("\"ph\":\"s\"") && lines[1].contains("\"id\":7"));
        assert!(lines[1].contains("\"pid\":1") && lines[1].contains("\"tid\":2"));
        assert!(lines[2].contains("\"ph\":\"C\"") && lines[2].contains("\"value\":4.000"));
        assert!(lines[3].contains("\"ph\":\"f\"") && lines[3].contains("\"bp\":\"e\""));
        assert!(lines[3].contains("\"pid\":3") && lines[3].contains("\"ts\":2.500"));
    }

    #[test]
    fn nanosecond_resolution_survives() {
        assert_eq!(us(1.0), "0.001");
        assert_eq!(us(1234.0), "1.234");
    }
}
