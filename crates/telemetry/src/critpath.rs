//! Causal-trace analysis: critical path extraction and latency blame.
//!
//! The cluster scheduler emits a causally-identified trace: every
//! winning task attempt is a `task.*` span carrying its job / stage /
//! task coordinates, its queueing milestones (`pend`, `fetch_done`,
//! `work_start`), its origin (`fresh` / `spec` / `retry` / `crash` /
//! `recompute`), and the profiled component fractions of its service
//! window; the driver emits `job.arrival` / `stage.ready` /
//! `job.complete` instants; the fault domain emits `exec.blacklist` /
//! `exec.rejoin` instants. [`analyze`] rebuilds each completed job's
//! stage DAG from those events, walks the **critical path** backward
//! (each stage's barrier is the span that finished last — its `t1_ns`
//! *is* the next stage's ready time, on the simulated clock, exactly),
//! and attributes every nanosecond of job latency to one of
//! [`CATEGORIES`].
//!
//! The attribution obeys a **conservation law**, enforced as a hard
//! check rather than trusted: per job, the nine categories sum to the
//! job's latency to within accumulation tolerance, and the longest
//! per-job critical path never exceeds the cluster makespan. A trace
//! that violates either is corrupt (a missing barrier span, a
//! mis-threaded causal id) and analysis fails loudly instead of
//! producing a plausible-looking lie.
//!
//! Everything here is pure function of a [`Recorder`] — byte-identical
//! output for any worker-thread count, nothing when tracing is off.

use crate::json::JsonWriter;
use crate::span::{Attr, AttrValue, Recorder, Span};
use std::collections::BTreeMap;

/// The closed blame category set, in rendering order. Every nanosecond
/// of every completed job's latency lands in exactly one bucket.
pub const CATEGORIES: [&str; 9] = [
    "queue", "compute", "serde", "fetch", "du_wait", "gc", "recovery",
    "speculation", "blacklist",
];

/// Index of `"queue"` — ready-to-dispatch wait with free capacity.
pub const CAT_QUEUE: usize = 0;
/// Index of `"compute"` — the service window minus serde/GC shares.
pub const CAT_COMPUTE: usize = 1;
/// Index of `"serde"` — serialize + deserialize share of the service.
pub const CAT_SERDE: usize = 2;
/// Index of `"fetch"` — network shuffle/scan input transfer.
pub const CAT_FETCH: usize = 3;
/// Index of `"du_wait"` — queueing for a shared DU context.
pub const CAT_DU_WAIT: usize = 4;
/// Index of `"gc"` — GC-pressure share of the service window.
pub const CAT_GC: usize = 5;
/// Index of `"recovery"` — re-execution delay after a detected failure.
pub const CAT_RECOVERY: usize = 6;
/// Index of `"speculation"` — delay until a speculative copy launched.
pub const CAT_SPECULATION: usize = 7;
/// Index of `"blacklist"` — dispatch wait while capacity was
/// blacklisted.
pub const CAT_BLACKLIST: usize = 8;

/// Why a trace failed causal analysis. Any of these means the trace is
/// corrupt — callers should treat it like a failed reconciliation.
#[derive(Clone, Debug, PartialEq)]
pub enum CritPathError {
    /// A completed job is missing its `job.arrival` instant.
    MissingArrival {
        /// The job.
        job: u64,
    },
    /// A job's stage has no `stage.ready` instant.
    MissingReady {
        /// The job.
        job: u64,
        /// The stage.
        stage: u64,
    },
    /// No task span's `t1_ns` matches the stage barrier exactly.
    MissingBarrierSpan {
        /// The job.
        job: u64,
        /// The stage.
        stage: u64,
    },
    /// A critical span's milestones are out of causal order.
    BadMilestones {
        /// The job.
        job: u64,
        /// The stage.
        stage: u64,
    },
    /// A job's categories do not sum to its latency.
    ConservationViolated {
        /// The job.
        job: u64,
        /// Category sum, nanoseconds.
        sum_ns: f64,
        /// Job latency, nanoseconds.
        latency_ns: f64,
    },
    /// The longest job critical path exceeds the cluster makespan.
    ExceedsMakespan {
        /// Longest per-job critical path, nanoseconds.
        critical_path_ns: f64,
        /// Cluster makespan, nanoseconds.
        makespan_ns: f64,
    },
}

impl std::fmt::Display for CritPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CritPathError::MissingArrival { job } => {
                write!(f, "job {job}: no job.arrival instant")
            }
            CritPathError::MissingReady { job, stage } => {
                write!(f, "job {job} stage {stage}: no stage.ready instant")
            }
            CritPathError::MissingBarrierSpan { job, stage } => {
                write!(f, "job {job} stage {stage}: no task span ends at the barrier")
            }
            CritPathError::BadMilestones { job, stage } => {
                write!(f, "job {job} stage {stage}: milestones out of causal order")
            }
            CritPathError::ConservationViolated { job, sum_ns, latency_ns } => {
                write!(
                    f,
                    "job {job}: blame sums to {sum_ns} ns but latency is {latency_ns} ns"
                )
            }
            CritPathError::ExceedsMakespan { critical_path_ns, makespan_ns } => {
                write!(
                    f,
                    "critical path {critical_path_ns} ns exceeds makespan {makespan_ns} ns"
                )
            }
        }
    }
}

impl std::error::Error for CritPathError {}

/// One completed job's critical-path attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct JobBlame {
    /// The job id.
    pub job: u64,
    /// The tenant the job belongs to.
    pub tenant: u64,
    /// Arrival on the simulated clock, nanoseconds.
    pub arrival_ns: f64,
    /// Completion on the simulated clock, nanoseconds.
    pub complete_ns: f64,
    /// End-to-end latency, nanoseconds.
    pub latency_ns: f64,
    /// Per-category nanoseconds, indexed like [`CATEGORIES`]; sums to
    /// `latency_ns` (enforced).
    pub blame: [f64; 9],
}

/// One tenant's aggregate over its completed jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantBlame {
    /// The tenant id.
    pub tenant: u64,
    /// Completed jobs.
    pub jobs: u64,
    /// Exact median latency (rank `ceil(0.50 n)`), nanoseconds.
    pub p50_ns: f64,
    /// Exact p95 latency, nanoseconds.
    pub p95_ns: f64,
    /// Exact p99 latency, nanoseconds.
    pub p99_ns: f64,
    /// Summed latency, nanoseconds.
    pub latency_sum_ns: f64,
    /// Per-category nanoseconds summed over the tenant's jobs.
    pub blame: [f64; 9],
}

/// The full causal analysis of one cluster trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Per-job attributions, in job-id order.
    pub jobs: Vec<JobBlame>,
    /// Per-tenant aggregates, in tenant-id order.
    pub tenants: Vec<TenantBlame>,
    /// Longest per-job critical path, nanoseconds.
    pub critical_path_ns: f64,
    /// The cluster makespan the caller measured, nanoseconds.
    pub makespan_ns: f64,
}

fn attr_u64(attrs: &[Attr], key: &str) -> Option<u64> {
    attrs.iter().find_map(|(k, v)| match v {
        AttrValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn attr_f64(attrs: &[Attr], key: &str) -> Option<f64> {
    attrs.iter().find_map(|(k, v)| match v {
        AttrValue::F64(x) if *k == key => Some(*x),
        _ => None,
    })
}

fn attr_str<'a>(attrs: &'a [Attr], key: &str) -> Option<&'a str> {
    attrs.iter().find_map(|(k, v)| match v {
        AttrValue::Str(s) if *k == key => Some(*s),
        _ => None,
    })
}

/// Simulated intervals during which at least one executor was
/// blacklisted, merged from per-pid `exec.blacklist` / `exec.rejoin`
/// instant pairs (an unmatched blacklist extends to infinity).
fn blacklist_union(rec: &Recorder) -> Vec<(f64, f64)> {
    let mut per_pid: BTreeMap<u32, Vec<(f64, bool)>> = BTreeMap::new();
    for e in &rec.instants {
        let on = match e.name {
            "exec.blacklist" => true,
            "exec.rejoin" => false,
            _ => continue,
        };
        per_pid.entry(e.entity.pid).or_default().push((e.t_ns, on));
    }
    let mut intervals: Vec<(f64, f64)> = Vec::new();
    for marks in per_pid.values_mut() {
        marks.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut open: Option<f64> = None;
        for &(t, on) in marks.iter() {
            match (on, open) {
                (true, None) => open = Some(t),
                (false, Some(t0)) => {
                    intervals.push((t0, t));
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(t0) = open {
            intervals.push((t0, f64::INFINITY));
        }
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (a, b) in intervals {
        match merged.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

/// Length of `[a, b]` covered by the interval union.
fn covered(union: &[(f64, f64)], a: f64, b: f64) -> f64 {
    let mut cov = 0.0;
    for &(x, y) in union {
        let lo = x.max(a);
        let hi = y.min(b);
        if hi > lo {
            cov += hi - lo;
        }
    }
    cov.min(b - a)
}

/// Rank-`ceil(q·n)` order statistic over an ascending-sorted slice —
/// the same exact-percentile convention the histogram documents.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Rebuilds every completed job's stage DAG from the trace, extracts
/// each critical path, and attributes all latency to [`CATEGORIES`].
///
/// # Errors
/// Returns a [`CritPathError`] when the trace is causally incomplete or
/// the conservation law fails — callers must treat that as a corrupt
/// trace, not a soft condition.
pub fn analyze(rec: &Recorder, makespan_ns: f64) -> Result<Analysis, CritPathError> {
    // Driver milestones, keyed by causal id.
    let mut arrival: BTreeMap<u64, (f64, u64)> = BTreeMap::new(); // job -> (t, tenant)
    let mut ready: BTreeMap<(u64, u64), f64> = BTreeMap::new(); // (job, stage) -> t
    let mut complete: BTreeMap<u64, f64> = BTreeMap::new(); // job -> t
    for e in &rec.instants {
        match e.name {
            "job.arrival" => {
                if let (Some(j), Some(t)) =
                    (attr_u64(&e.attrs, "job"), attr_u64(&e.attrs, "tenant"))
                {
                    arrival.insert(j, (e.t_ns, t));
                }
            }
            "stage.ready" => {
                if let (Some(j), Some(s)) =
                    (attr_u64(&e.attrs, "job"), attr_u64(&e.attrs, "stage"))
                {
                    ready.insert((j, s), e.t_ns);
                }
            }
            "job.complete" => {
                if let Some(j) = attr_u64(&e.attrs, "job") {
                    complete.insert(j, e.t_ns);
                }
            }
            _ => {}
        }
    }

    // Task spans by (job, stage), in emission order.
    let mut tasks: BTreeMap<(u64, u64), Vec<&Span>> = BTreeMap::new();
    for s in &rec.spans {
        if !s.name.starts_with("task.") {
            continue;
        }
        if let (Some(j), Some(st)) = (attr_u64(&s.attrs, "job"), attr_u64(&s.attrs, "stage")) {
            tasks.entry((j, st)).or_default().push(s);
        }
    }

    let bl_union = blacklist_union(rec);
    let mut jobs: Vec<JobBlame> = Vec::new();
    for (&job, &done) in &complete {
        let &(arr, tenant) = arrival
            .get(&job)
            .ok_or(CritPathError::MissingArrival { job })?;
        let latency = done - arr;
        let stages = (0u64..)
            .take_while(|s| ready.contains_key(&(job, *s)))
            .count() as u64;
        if stages == 0 {
            return Err(CritPathError::MissingReady { job, stage: 0 });
        }
        let mut blame = [0.0f64; 9];
        for s in 0..stages {
            let stage_ready = ready[&(job, s)];
            // The stage barrier: the next stage became ready (or the
            // job completed) the instant the last task span ended —
            // the same simulated `now` flows to both, so the match is
            // exact, not approximate.
            let barrier = if s + 1 < stages { ready[&(job, s + 1)] } else { done };
            let spans = tasks
                .get(&(job, s))
                .ok_or(CritPathError::MissingBarrierSpan { job, stage: s })?;
            // Last match in emission order: the span whose completion
            // event actually advanced the barrier.
            let crit = spans
                .iter()
                .rev()
                .find(|sp| sp.t1_ns == barrier)
                .ok_or(CritPathError::MissingBarrierSpan { job, stage: s })?;

            let pend = attr_f64(&crit.attrs, "pend").unwrap_or(crit.t0_ns);
            let fetch_done = attr_f64(&crit.attrs, "fetch_done").unwrap_or(crit.t0_ns);
            let work_start = attr_f64(&crit.attrs, "work_start").unwrap_or(fetch_done);
            let eps = 1e-6 * barrier.abs().max(1.0);
            let ordered = stage_ready - eps <= pend
                && pend - eps <= crit.t0_ns
                && crit.t0_ns - eps <= fetch_done
                && fetch_done - eps <= work_start
                && work_start - eps <= crit.t1_ns;
            if !ordered {
                return Err(CritPathError::BadMilestones { job, stage: s });
            }

            // [ready -> pend]: how long the stage waited for this
            // attempt to even exist — blamed on why it was re-launched.
            let origin_wait = (pend - stage_ready).max(0.0);
            let origin_cat = match attr_str(&crit.attrs, "origin") {
                Some("spec") => CAT_SPECULATION,
                Some("retry") | Some("crash") | Some("recompute") => CAT_RECOVERY,
                _ => CAT_QUEUE,
            };
            blame[origin_cat] += origin_wait;

            // [pend -> dispatch]: queue wait, with the sub-window in
            // which any executor sat blacklisted charged to the drain.
            let disp_wait = (crit.t0_ns - pend).max(0.0);
            let bl = covered(&bl_union, pend, pend + disp_wait).max(0.0);
            blame[CAT_BLACKLIST] += bl;
            blame[CAT_QUEUE] += disp_wait - bl;

            // [dispatch -> fetch_done]: input transfer over the fabric.
            blame[CAT_FETCH] += (fetch_done - crit.t0_ns).max(0.0);
            // [fetch_done -> work_start]: DU-context queueing.
            blame[CAT_DU_WAIT] += (work_start - fetch_done).max(0.0);

            // [work_start -> t1]: the service window, split by the
            // profiled component fractions; compute is the residual so
            // the window partitions exactly.
            let c = (crit.t1_ns - work_start).max(0.0);
            let ser = attr_f64(&crit.attrs, "ser_frac").unwrap_or(0.0) * c;
            let de = attr_f64(&crit.attrs, "de_frac").unwrap_or(0.0) * c;
            let gc = attr_f64(&crit.attrs, "gc_frac").unwrap_or(0.0) * c;
            let mut comp = c - ser - de - gc;
            if comp < 0.0 {
                if comp < -1e-6 * c.max(1.0) {
                    return Err(CritPathError::BadMilestones { job, stage: s });
                }
                comp = 0.0;
            }
            blame[CAT_SERDE] += ser + de;
            blame[CAT_GC] += gc;
            blame[CAT_COMPUTE] += comp;
        }
        // The conservation law: the nine categories partition the
        // latency. Telescoping over exact barrier matches leaves only
        // f64 accumulation error — anything beyond tolerance means the
        // causal chain is broken.
        let sum: f64 = blame.iter().sum();
        if (sum - latency).abs() > 1e-9 * latency.abs().max(1.0) {
            return Err(CritPathError::ConservationViolated {
                job,
                sum_ns: sum,
                latency_ns: latency,
            });
        }
        jobs.push(JobBlame {
            job,
            tenant,
            arrival_ns: arr,
            complete_ns: done,
            latency_ns: latency,
            blame,
        });
    }

    let critical_path_ns = jobs.iter().map(|j| j.latency_ns).fold(0.0, f64::max);
    if critical_path_ns > makespan_ns + 1e-9 * makespan_ns.abs().max(1.0) {
        return Err(CritPathError::ExceedsMakespan { critical_path_ns, makespan_ns });
    }

    let mut by_tenant: BTreeMap<u64, Vec<&JobBlame>> = BTreeMap::new();
    for j in &jobs {
        by_tenant.entry(j.tenant).or_default().push(j);
    }
    let tenants = by_tenant
        .into_iter()
        .map(|(tenant, js)| {
            let mut lat: Vec<f64> = js.iter().map(|j| j.latency_ns).collect();
            lat.sort_by(f64::total_cmp);
            let mut blame = [0.0f64; 9];
            for j in &js {
                for (acc, v) in blame.iter_mut().zip(j.blame) {
                    *acc += v;
                }
            }
            TenantBlame {
                tenant,
                jobs: js.len() as u64,
                p50_ns: percentile(&lat, 0.50),
                p95_ns: percentile(&lat, 0.95),
                p99_ns: percentile(&lat, 0.99),
                latency_sum_ns: lat.iter().sum(),
                blame,
            }
        })
        .collect();

    Ok(Analysis { jobs, tenants, critical_path_ns, makespan_ns })
}

impl Analysis {
    /// Per-category nanoseconds summed over every completed job.
    pub fn total_blame(&self) -> [f64; 9] {
        let mut total = [0.0f64; 9];
        for j in &self.jobs {
            for (acc, v) in total.iter_mut().zip(j.blame) {
                *acc += v;
            }
        }
        total
    }

    /// The category holding the largest share of total latency.
    pub fn dominant_category(&self) -> &'static str {
        let total = self.total_blame();
        let mut best = 0;
        for (i, v) in total.iter().enumerate() {
            if *v > total[best] {
                best = i;
            }
        }
        CATEGORIES[best]
    }

    /// Renders the analysis as the `blame` JSON block: category names,
    /// conservation totals, and one row per tenant with exact latency
    /// percentiles and per-category blame columns.
    pub fn render(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.key("categories");
        w.begin_arr();
        for c in CATEGORIES {
            w.str_val(c);
        }
        w.end_arr();
        w.field_u64("jobs", self.jobs.len() as u64);
        w.field_f64("makespan_ns", self.makespan_ns, 3);
        w.field_f64("critical_path_ns", self.critical_path_ns, 3);
        w.field_str("dominant", self.dominant_category());
        let total = self.total_blame();
        w.key("total_ns");
        w.begin_obj();
        for (name, v) in CATEGORIES.iter().zip(total) {
            w.field_f64(name, v, 3);
        }
        w.end_obj();
        w.key("tenants");
        w.begin_arr();
        for t in &self.tenants {
            w.begin_obj();
            w.field_u64("tenant", t.tenant);
            w.field_u64("jobs", t.jobs);
            w.field_f64("p50_ns", t.p50_ns, 3);
            w.field_f64("p95_ns", t.p95_ns, 3);
            w.field_f64("p99_ns", t.p99_ns, 3);
            w.field_f64("latency_sum_ns", t.latency_sum_ns, 3);
            w.key("blame_ns");
            w.begin_obj();
            for (name, v) in CATEGORIES.iter().zip(t.blame) {
                w.field_f64(name, v, 3);
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
    }
}

/// The time-sliced gauge timeline: every [`crate::span::Sample`]
/// series in the trace, grouped by name, in emission (= simulated
/// time) order.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// `(series name, [(t_ns, value)])`, sorted by name.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Timeline {
    /// Collects the recorder's samples into named series.
    pub fn from_recorder(rec: &Recorder) -> Timeline {
        let mut by_name: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
        for s in &rec.samples {
            by_name.entry(s.name).or_default().push((s.t_ns, s.value));
        }
        Timeline {
            series: by_name
                .into_iter()
                .map(|(n, pts)| (n.to_string(), pts))
                .collect(),
        }
    }

    /// Renders the timeline as `{series: {name: {t_ns: [...],
    /// value: [...]}}}` — columnar so the fixed bucket grid is obvious.
    pub fn render(&self, w: &mut JsonWriter) {
        w.begin_obj();
        for (name, pts) in &self.series {
            w.key(name);
            w.begin_obj();
            w.key("t_ns");
            w.begin_arr();
            for &(t, _) in pts {
                w.f64_val(t, 1);
            }
            w.end_arr();
            w.key("value");
            w.begin_arr();
            for &(_, v) in pts {
                w.f64_val(v, 3);
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{EntityId, Instant, Sample, Sink};

    const DRIVER: EntityId = EntityId { pid: 1, tid: 0 };
    const EXEC: EntityId = EntityId { pid: 10_000, tid: 0 };

    fn instant(name: &'static str, t: f64, attrs: Vec<Attr>) -> Instant {
        Instant { entity: DRIVER, name, t_ns: t, attrs }
    }

    /// One job, one stage, one task: arrival 0, dispatched at 10,
    /// fetched until 30, DU wait until 40, service until 100 with
    /// ser_frac 0.25.
    fn one_task_trace() -> Recorder {
        let mut r = Recorder::new();
        r.instant(instant(
            "job.arrival",
            0.0,
            vec![("job", 0u64.into()), ("tenant", 3u64.into())],
        ));
        r.instant(instant(
            "stage.ready",
            0.0,
            vec![("job", 0u64.into()), ("stage", 0u64.into())],
        ));
        r.span(Span {
            entity: EXEC,
            name: "task.map",
            t0_ns: 10.0,
            t1_ns: 100.0,
            attrs: vec![
                ("job", 0u64.into()),
                ("stage", 0u64.into()),
                ("task", 0u64.into()),
                ("origin", "fresh".into()),
                ("pend", 0.0f64.into()),
                ("fetch_done", 30.0f64.into()),
                ("work_start", 40.0f64.into()),
                ("ser_frac", 0.25f64.into()),
                ("de_frac", 0.0f64.into()),
                ("gc_frac", 0.0f64.into()),
            ],
        });
        r.instant(instant("job.complete", 100.0, vec![("job", 0u64.into())]));
        r
    }

    #[test]
    fn one_task_blame_partitions_latency() {
        let a = analyze(&one_task_trace(), 100.0).expect("analyzes");
        assert_eq!(a.jobs.len(), 1);
        let j = &a.jobs[0];
        assert_eq!(j.tenant, 3);
        assert_eq!(j.latency_ns, 100.0);
        assert_eq!(j.blame[CAT_QUEUE], 10.0);
        assert_eq!(j.blame[CAT_FETCH], 20.0);
        assert_eq!(j.blame[CAT_DU_WAIT], 10.0);
        assert_eq!(j.blame[CAT_SERDE], 15.0); // 0.25 * 60
        assert_eq!(j.blame[CAT_COMPUTE], 45.0);
        assert_eq!(j.blame.iter().sum::<f64>(), 100.0);
        assert_eq!(a.critical_path_ns, 100.0);
        assert_eq!(a.tenants.len(), 1);
        assert_eq!(a.tenants[0].p50_ns, 100.0);
        assert_eq!(a.dominant_category(), "compute");
    }

    #[test]
    fn blacklist_overlap_is_charged_to_the_drain() {
        let mut r = one_task_trace();
        // Executor blacklisted over [2, 6] — 4 ns of the 10 ns dispatch
        // wait.
        r.instant(Instant {
            entity: EntityId { pid: 10_001, tid: 5 },
            name: "exec.blacklist",
            t_ns: 2.0,
            attrs: Vec::new(),
        });
        r.instant(Instant {
            entity: EntityId { pid: 10_001, tid: 5 },
            name: "exec.rejoin",
            t_ns: 6.0,
            attrs: Vec::new(),
        });
        let a = analyze(&r, 100.0).expect("analyzes");
        let j = &a.jobs[0];
        assert_eq!(j.blame[CAT_BLACKLIST], 4.0);
        assert_eq!(j.blame[CAT_QUEUE], 6.0);
        assert_eq!(j.blame.iter().sum::<f64>(), 100.0);
    }

    #[test]
    fn spec_and_retry_origins_move_the_wait() {
        for (origin, cat) in [("spec", CAT_SPECULATION), ("crash", CAT_RECOVERY)] {
            let mut r = one_task_trace();
            let sp = &mut r.spans[0];
            sp.attrs.retain(|(k, _)| *k != "origin" && *k != "pend");
            sp.attrs.push(("origin", origin.into()));
            sp.attrs.push(("pend", 8.0f64.into()));
            let a = analyze(&r, 100.0).expect("analyzes");
            let j = &a.jobs[0];
            assert_eq!(j.blame[cat], 8.0, "origin {origin}");
            assert_eq!(j.blame[CAT_QUEUE], 2.0);
            assert_eq!(j.blame.iter().sum::<f64>(), 100.0);
        }
    }

    #[test]
    fn missing_barrier_span_is_a_hard_error() {
        let mut r = one_task_trace();
        r.spans[0].t1_ns = 99.0; // no longer matches the barrier
        assert_eq!(
            analyze(&r, 100.0),
            Err(CritPathError::MissingBarrierSpan { job: 0, stage: 0 })
        );
    }

    #[test]
    fn critical_path_cannot_exceed_makespan() {
        let r = one_task_trace();
        assert_eq!(
            analyze(&r, 50.0),
            Err(CritPathError::ExceedsMakespan {
                critical_path_ns: 100.0,
                makespan_ns: 50.0
            })
        );
    }

    #[test]
    fn incomplete_jobs_are_skipped() {
        let mut r = one_task_trace();
        // A shed job: arrival but no completion.
        r.instant(instant(
            "job.arrival",
            5.0,
            vec![("job", 1u64.into()), ("tenant", 0u64.into())],
        ));
        let a = analyze(&r, 100.0).expect("analyzes");
        assert_eq!(a.jobs.len(), 1);
    }

    #[test]
    fn timeline_groups_series_by_name() {
        let mut r = Recorder::new();
        for (t, v) in [(50.0, 1.0), (100.0, 3.0)] {
            r.sample(Sample { entity: DRIVER, name: "b.depth", t_ns: t, value: v });
        }
        r.sample(Sample { entity: DRIVER, name: "a.util", t_ns: 50.0, value: 0.5 });
        let tl = Timeline::from_recorder(&r);
        assert_eq!(tl.series.len(), 2);
        assert_eq!(tl.series[0].0, "a.util");
        assert_eq!(tl.series[1].1, vec![(50.0, 1.0), (100.0, 3.0)]);
        let mut w = JsonWriter::new();
        tl.render(&mut w);
        let json = w.finish();
        assert!(json.contains("\"b.depth\""));
        assert!(json.contains("\"t_ns\": [50.0, 100.0]"));
    }
}
