//! The workspace-wide trace id convention.
//!
//! Chrome's trace model groups events by `(pid, tid)`. Each simulated
//! executor or device gets a process id, each of its work streams a
//! thread id, and every crate that instruments itself uses these
//! constants — so recorders produced by different subsystems merge into
//! one coherent trace without id collisions.

/// The driver / store scenario timeline.
pub const DRIVER_PID: u32 = 1;
/// Mapper executor `m` is process `MAPPER_PID_BASE + m`.
pub const MAPPER_PID_BASE: u32 = 100;
/// Reducer executor `r` is process `REDUCER_PID_BASE + r`.
pub const REDUCER_PID_BASE: u32 = 200;
/// The Cereal accelerator device.
pub const ACCEL_PID: u32 = 900;
/// Cluster executor `e` is process `CLUSTER_PID_BASE + e`. The base
/// sits far above the other ranges so 1000-executor clusters cannot
/// collide with mapper/reducer/accelerator pids.
pub const CLUSTER_PID_BASE: u32 = 10_000;

/// Main work stream of an executor (serialize / deserialize / driver).
pub const T_MAIN: u32 = 0;
/// The executor's spill-disk device stream.
pub const T_DISK: u32 = 1;
/// Send-side flow control: wire attempts, backpressure, retry backoff.
pub const T_SEND: u32 = 2;
/// NIC busy windows (egress on mappers, ingress on reducers).
pub const T_NIC: u32 = 3;
/// DU-context wait stream of a cluster executor (queueing for a shared
/// accelerator deserialization context).
pub const T_DU: u32 = 4;
/// Fault-lifecycle stream of a cluster executor (crash/undetected
/// window/blacklist/restart instants and spans) and of the driver (job
/// shed/failed instants).
pub const T_FAIL: u32 = 5;

/// Accelerator SU `u` traces on thread `u`; DU `u` on
/// `DU_TID_BASE + u`.
pub const DU_TID_BASE: u32 = 64;
