//! The one shared pretty-JSON writer.
//!
//! Every report and exporter in the workspace renders through this
//! writer, replacing the hand-rolled `format!` JSON that used to be
//! copy-pasted between the shuffle and store reports. Output is fully
//! deterministic: objects put one key per line at two-space indent,
//! arrays keep scalar elements inline and give structured elements
//! their own lines.

enum Ctx {
    Obj { first: bool },
    Arr { first: bool, multiline: bool },
}

/// A streaming pretty-JSON writer.
///
/// ```
/// use telemetry::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_obj();
/// w.field_str("name", "run");
/// w.key("counts");
/// w.begin_arr();
/// w.u64_val(1);
/// w.u64_val(2);
/// w.end_arr();
/// w.end_obj();
/// assert_eq!(w.finish(), "{\n  \"name\": \"run\",\n  \"counts\": [1, 2]\n}");
/// ```
pub struct JsonWriter {
    out: String,
    stack: Vec<Ctx>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter { out: String::new(), stack: Vec::new() }
    }

    fn push_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Separator before a *value* (not a key) in the current context.
    /// `structured` values in arrays go on their own line.
    fn value_sep(&mut self, structured: bool) {
        if let Some(Ctx::Arr { first, multiline }) = self.stack.last_mut() {
            let was_first = *first;
            *first = false;
            if structured {
                *multiline = true;
                if !was_first {
                    self.out.push(',');
                }
                self.push_indent();
            } else if !was_first {
                self.out.push_str(", ");
            }
        }
    }

    /// Starts the next key of the current object.
    ///
    /// # Panics
    /// Panics when the writer is not inside an object.
    pub fn key(&mut self, k: &str) {
        match self.stack.last_mut() {
            Some(Ctx::Obj { first }) => {
                let was_first = *first;
                *first = false;
                if !was_first {
                    self.out.push(',');
                }
            }
            _ => panic!("key() outside an object"),
        }
        self.push_indent();
        self.out.push('"');
        self.out.push_str(&esc(k));
        self.out.push_str("\": ");
    }

    /// Opens an object value.
    pub fn begin_obj(&mut self) {
        self.value_sep(true);
        self.out.push('{');
        self.stack.push(Ctx::Obj { first: true });
    }

    /// Closes the current object.
    pub fn end_obj(&mut self) {
        match self.stack.pop() {
            Some(Ctx::Obj { first }) => {
                if !first {
                    self.push_indent();
                }
                self.out.push('}');
            }
            _ => panic!("end_obj() without begin_obj()"),
        }
    }

    /// Opens an array value.
    pub fn begin_arr(&mut self) {
        self.value_sep(true);
        self.out.push('[');
        self.stack.push(Ctx::Arr { first: true, multiline: false });
    }

    /// Closes the current array.
    pub fn end_arr(&mut self) {
        match self.stack.pop() {
            Some(Ctx::Arr { multiline, .. }) => {
                if multiline {
                    self.push_indent();
                }
                self.out.push(']');
            }
            _ => panic!("end_arr() without begin_arr()"),
        }
    }

    /// Writes a string value.
    pub fn str_val(&mut self, s: &str) {
        self.value_sep(false);
        self.out.push('"');
        self.out.push_str(&esc(s));
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) {
        self.value_sep(false);
        self.out.push_str(&v.to_string());
    }

    /// Writes a float value with fixed `decimals`.
    pub fn f64_val(&mut self, v: f64, decimals: usize) {
        debug_assert!(v.is_finite(), "non-finite value in JSON output");
        self.value_sep(false);
        self.out.push_str(&format!("{v:.decimals$}"));
    }

    /// Writes a boolean value.
    pub fn bool_val(&mut self, v: bool) {
        self.value_sep(false);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null_val(&mut self) {
        self.value_sep(false);
        self.out.push_str("null");
    }

    /// Writes pre-rendered JSON as a value, indenting its continuation
    /// lines to the current nesting level.
    pub fn raw_val(&mut self, json: &str) {
        self.value_sep(false);
        let mut pad = String::from("\n");
        for _ in 0..self.stack.len() {
            pad.push_str("  ");
        }
        self.out.push_str(&json.trim_end().replace('\n', &pad));
    }

    /// `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_val(v);
    }

    /// `key` + unsigned value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_val(v);
    }

    /// `key` + float value with fixed `decimals`.
    pub fn field_f64(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        self.f64_val(v, decimals);
    }

    /// `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool_val(v);
    }

    /// Finishes and returns the document (no trailing newline).
    ///
    /// # Panics
    /// Panics when objects or arrays are still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON structure");
        self.out
    }
}

/// Escapes a string for a JSON literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Indents every line of a rendered document except the first by one
/// level — the helper the experiment binaries use to nest a report
/// inside their wrapper object (formerly copy-pasted per binary).
pub fn nest(json: &str) -> String {
    json.trim_end().replace('\n', "\n  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_one_key_per_line() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_u64("a", 1);
        w.field_str("b", "x");
        w.end_obj();
        assert_eq!(w.finish(), "{\n  \"a\": 1,\n  \"b\": \"x\"\n}");
    }

    #[test]
    fn scalar_arrays_stay_inline_structured_break_lines() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("flat");
        w.begin_arr();
        w.u64_val(1);
        w.f64_val(2.5, 1);
        w.end_arr();
        w.key("deep");
        w.begin_arr();
        w.begin_obj();
        w.field_bool("ok", true);
        w.end_obj();
        w.end_arr();
        w.end_obj();
        assert_eq!(
            w.finish(),
            "{\n  \"flat\": [1, 2.5],\n  \"deep\": [\n    {\n      \"ok\": true\n    }\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_close_inline() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("o");
        w.begin_obj();
        w.end_obj();
        w.key("a");
        w.begin_arr();
        w.end_arr();
        w.end_obj();
        assert_eq!(w.finish(), "{\n  \"o\": {},\n  \"a\": []\n}");
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn nest_indents_continuations() {
        assert_eq!(nest("{\n  \"a\": 1\n}\n"), "{\n    \"a\": 1\n  }");
    }

    #[test]
    fn raw_val_reindents() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("inner");
        w.raw_val("{\n  \"a\": 1\n}");
        w.end_obj();
        assert_eq!(w.finish(), "{\n  \"inner\": {\n    \"a\": 1\n  }\n}");
    }
}
