//! `telemetry` — deterministic observability on the **simulated clock**.
//!
//! Every number the workspace reports is simulated time or a
//! deterministic counter; this crate gives those numbers a *timeline*.
//! It is the measurement substrate the rest of the stack instruments
//! itself with:
//!
//! * [`span`] — structured spans and instant events over
//!   `(entity, stage, t_start_ns, t_end_ns, attrs)`, delivered through
//!   the [`Sink`] trait. The default method bodies are empty and
//!   [`Sink::ENABLED`] is `false`, so instrumented hot paths
//!   monomorphize to nothing when tracing is off ([`NoopSink`]) — the
//!   instrumentation is free unless a [`Recorder`] is plugged in;
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms keyed by name. Registries merge deterministically
//!   (sorted maps, entity-ordered merge), so exported metrics are
//!   byte-identical for any worker-thread count;
//! * [`chrome`] — an exporter writing Chrome trace-event JSON loadable
//!   in Perfetto / `chrome://tracing`: one "process" per executor or
//!   device, one "thread" per work stream (serialize, spill disk, flow
//!   control, NIC), flow arrows for cross-entity causal edges, counter
//!   tracks for timestamped gauge samples;
//! * [`critpath`] — the causal-trace analysis layer: rebuilds each
//!   job's dependency DAG from a [`Recorder`], walks the critical
//!   path, and attributes every nanosecond of job latency to a closed
//!   blame category set under an exact conservation law;
//! * [`recon`] — the shared counter-reconciliation checklist the bench
//!   binaries drive to prove exported telemetry agrees with the
//!   report-side numbers;
//! * [`json`] — the one shared pretty-JSON writer behind every report
//!   and exporter in the workspace (deduplicating the hand-rolled
//!   `format!` JSON the shuffle and store reports used to copy-paste);
//! * [`rate`] — zero/negative-denominator-safe rate helpers used
//!   everywhere a rate or ratio is rendered;
//! * [`ids`] — the workspace-wide process/thread id convention so
//!   recorders from different subsystems merge into one coherent trace.
//!
//! Nothing here touches the wall clock, the filesystem, or any
//! dependency outside `std`.

pub mod chrome;
pub mod critpath;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod rate;
pub mod recon;
pub mod span;

pub use chrome::chrome_trace;
pub use json::JsonWriter;
pub use metrics::{Gauge, Histogram, Metrics};
pub use rate::{per_sec, ratio};
pub use recon::{Check, Recon};
pub use span::{
    AttrValue, EntityId, FlowEvent, Instant, NoopSink, Recorder, Sample, Sink, Span,
};
