//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Everything is keyed by name in sorted maps and merged in the
//! caller's (entity-ordered) merge sequence, so a registry assembled
//! from per-worker children renders byte-identically for any thread
//! count.

use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// A sampled value: last/min/max plus sum and sample count (so merged
/// gauges can still report an average).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gauge {
    /// Most recently sampled value.
    pub last: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub sum: f64,
    /// Number of samples.
    pub samples: u64,
}

impl Gauge {
    fn record(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.samples += 1;
    }

    fn merge(&mut self, other: &Gauge) {
        // "last" follows merge order — deterministic because merges are.
        self.last = other.last;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.samples += other.samples;
    }

    fn new(v: f64) -> Gauge {
        Gauge { last: v, min: v, max: v, sum: v, samples: 1 }
    }
}

/// Default histogram bucket edges: powers of four from 1, covering
/// sub-nanosecond costs up to ≈ 1 simulated second (and byte sizes up
/// to ≈ 1 GB) in 16 buckets plus overflow.
pub const DEFAULT_BOUNDS: [f64; 16] = [
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// A fixed-bucket histogram. Bucket `i` counts observations
/// `<= bounds[i]` (and above the previous bound); one overflow bucket
/// catches the rest. Exact `count`/`sum`/`min`/`max` ride along so
/// totals reconcile exactly even though per-bucket resolution is
/// bounded.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Histogram {
    /// A histogram over the given strictly increasing upper bounds
    /// (plus an implicit overflow bucket).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram with the workspace default bounds.
    pub fn default_bounds() -> Histogram {
        Histogram::new(&DEFAULT_BOUNDS)
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The inclusive value range `[lo, hi]` the `q`-quantile
    /// observation fell in (bucket bounds tightened by the observed
    /// min/max). `None` when empty. `q` is clamped to `[0, 1]` (NaN
    /// clamps to 0). p0 and p100 are exact: the observed min and max
    /// are tracked outside the buckets, so both endpoints collapse to
    /// a zero-width interval instead of a whole-bucket guess.
    pub fn percentile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q == 0.0 {
            return Some((self.min, self.min));
        }
        if q == 1.0 {
            return Some((self.max, self.max));
        }
        // 1-based rank of the quantile observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { f64::NEG_INFINITY } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() { self.bounds[i] } else { f64::INFINITY };
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("rank <= count implies a bucket is found")
    }

    /// A point estimate of the `q`-quantile: the upper edge of its
    /// bucket, clamped to the observed range (exact for p0/p100).
    /// `None` when empty — the caller decides how to render "no data".
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.percentile_bounds(q).map(|(_, hi)| hi)
    }

    /// Merges another histogram recorded over the same bounds.
    ///
    /// # Panics
    /// Panics on mismatched bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(upper_bound, count)` per non-empty bucket; the overflow bucket
    /// reports `f64::INFINITY`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let hi = if i < self.bounds.len() { self.bounds[i] } else { f64::INFINITY };
                (hi, c)
            })
            .collect()
    }
}

/// The registry: named counters, gauges and histograms.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named counter.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Samples the named gauge.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => g.record(value),
            None => {
                self.gauges.insert(name, Gauge::new(value));
            }
        }
    }

    /// Records one observation into the named histogram (created with
    /// [`DEFAULT_BOUNDS`] on first use).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.hists
            .entry(name)
            .or_insert_with(Histogram::default_bounds)
            .record(value);
    }

    /// The named counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, if ever sampled.
    pub fn gauge_value(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// The named histogram, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another registry into this one. Callers merge children in
    /// a fixed entity order, so sums accumulate deterministically.
    pub fn merge(&mut self, other: Metrics) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, g) in other.gauges {
            match self.gauges.get_mut(name) {
                Some(mine) => mine.merge(&g),
                None => {
                    self.gauges.insert(name, g);
                }
            }
        }
        for (name, h) in other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.hists.insert(name, h);
                }
            }
        }
    }

    /// Renders the registry as deterministic JSON: counters, gauges,
    /// then histograms (with p50/p90/p99 estimates and non-empty
    /// buckets), all in name order.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("counters");
        w.begin_obj();
        for (&name, &v) in &self.counters {
            w.field_u64(name, v);
        }
        w.end_obj();
        w.key("gauges");
        w.begin_obj();
        for (&name, g) in &self.gauges {
            w.key(name);
            w.begin_obj();
            w.field_f64("last", g.last, 6);
            w.field_f64("min", g.min, 6);
            w.field_f64("max", g.max, 6);
            w.field_f64("sum", g.sum, 6);
            w.field_u64("samples", g.samples);
            w.end_obj();
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for (&name, h) in &self.hists {
            w.key(name);
            w.begin_obj();
            w.field_u64("count", h.count);
            w.field_f64("sum", h.sum, 3);
            // An empty histogram (min/max still at ±∞) renders as
            // zeros rather than panicking or emitting non-finite JSON.
            w.field_f64("min", if h.count > 0 { h.min } else { 0.0 }, 3);
            w.field_f64("max", if h.count > 0 { h.max } else { 0.0 }, 3);
            w.field_f64("p50", h.percentile(0.50).unwrap_or(0.0), 3);
            w.field_f64("p90", h.percentile(0.90).unwrap_or(0.0), 3);
            w.field_f64("p99", h.percentile(0.99).unwrap_or(0.0), 3);
            w.key("buckets");
            w.begin_arr();
            for (hi, c) in h.nonzero_buckets() {
                w.begin_arr();
                if hi.is_finite() {
                    w.f64_val(hi, 1);
                } else {
                    w.str_val("inf");
                }
                w.u64_val(c);
                w.end_arr();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Metrics::new();
        a.count("x", 3);
        a.count("x", 4);
        let mut b = Metrics::new();
        b.count("x", 5);
        b.count("y", 1);
        a.merge(b);
        assert_eq!(a.counter("x"), 12);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("missing"), 0);
    }

    #[test]
    fn gauge_tracks_extremes() {
        let mut m = Metrics::new();
        m.gauge("g", 5.0);
        m.gauge("g", 1.0);
        m.gauge("g", 9.0);
        let g = m.gauge_value("g").unwrap();
        assert_eq!(g.last, 9.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 9.0);
        assert_eq!(g.samples, 3);
    }

    #[test]
    fn histogram_totals_are_exact() {
        let mut h = Histogram::default_bounds();
        for v in [0.5, 3.0, 100.0, 1e9, 5e9] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 0.5 + 3.0 + 100.0 + 1e9 + 5e9);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 5e9);
        // 5e9 lands in the overflow bucket.
        assert_eq!(h.nonzero_buckets().last().unwrap().0, f64::INFINITY);
    }

    #[test]
    fn percentile_bounds_bracket_the_rank() {
        let mut h = Histogram::new(&[10.0, 100.0, 1000.0]);
        for v in [1.0, 2.0, 50.0, 60.0, 500.0] {
            h.record(v);
        }
        // Rank of p50 over 5 samples = 3rd smallest = 50.0.
        let (lo, hi) = h.percentile_bounds(0.5).unwrap();
        assert!(lo <= 50.0 && 50.0 <= hi, "[{lo}, {hi}]");
        // p100 is exact: the observed max, not a bucket edge.
        assert_eq!(h.percentile(1.0).unwrap(), 500.0);
        assert_eq!(h.percentile_bounds(1.0).unwrap(), (500.0, 500.0));
        // p0 is exact: the observed min, not the bucket's upper edge.
        assert_eq!(h.percentile(0.0).unwrap(), 1.0);
        assert_eq!(h.percentile_bounds(0.0).unwrap(), (1.0, 1.0));
        assert!(Histogram::default_bounds().percentile(0.5).is_none());
    }

    #[test]
    fn percentile_edge_cases_are_defined() {
        // Empty: every quantile is None, never a panic or ±∞.
        let empty = Histogram::default_bounds();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert!(empty.percentile(q).is_none());
            assert!(empty.percentile_bounds(q).is_none());
        }

        // Single observation: all quantiles collapse onto it.
        let mut one = Histogram::default_bounds();
        one.record(42.0);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(one.percentile(q).unwrap(), 42.0, "q={q}");
        }

        // Out-of-range and NaN quantiles clamp to the endpoints.
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.record(3.0);
        h.record(70.0);
        assert_eq!(h.percentile(-0.5).unwrap(), 3.0);
        assert_eq!(h.percentile(2.0).unwrap(), 70.0);
        assert_eq!(h.percentile(f64::NAN).unwrap(), 3.0);
    }

    #[test]
    fn empty_histogram_renders_zeros_not_garbage() {
        let mut m = Metrics::new();
        // Merging a registry that holds a never-observed histogram is
        // the one path that gets an empty histogram into `to_json`.
        let mut other = Metrics::new();
        other.hists.insert("lat", Histogram::default_bounds());
        m.merge(other);
        let json = m.to_json();
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"min\": 0.000"));
        assert!(json.contains("\"p99\": 0.000"));
        assert!(!json.contains("inf") || json.contains("\"inf\""));
    }

    #[test]
    fn merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 9.0);
    }

    #[test]
    fn json_is_deterministic() {
        let build = || {
            let mut m = Metrics::new();
            m.count("b", 2);
            m.count("a", 1);
            m.gauge("util", 0.5);
            m.observe("lat", 123.0);
            m.to_json()
        };
        let j = build();
        assert_eq!(j, build());
        assert!(j.contains("\"a\": 1"));
        assert!(j.contains("\"p50\""));
    }
}
