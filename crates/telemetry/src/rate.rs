//! Denominator-safe rate helpers.
//!
//! Every spot in the workspace that renders a rate or ratio — records
//! per second, link/disk utilization, IPC, goodput — divides a total by
//! an elapsed time or capacity that can legitimately be zero (empty
//! run, zero-length window). These helpers centralize the guard so no
//! report ever renders `inf`/`NaN`.

/// `count` per second over `elapsed_ns` of simulated time; `0.0` when
/// the window is empty, non-positive, or non-finite.
pub fn per_sec(count: u64, elapsed_ns: f64) -> f64 {
    if elapsed_ns > 0.0 && elapsed_ns.is_finite() {
        count as f64 * 1e9 / elapsed_ns
    } else {
        0.0
    }
}

/// `num / den`, `0.0` when the denominator is non-positive or either
/// side is non-finite.
pub fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 && den.is_finite() && num.is_finite() {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_zero_and_negative_denominators() {
        assert_eq!(per_sec(100, 0.0), 0.0);
        assert_eq!(per_sec(100, -5.0), 0.0);
        assert_eq!(per_sec(100, f64::NAN), 0.0);
        assert_eq!(per_sec(5, 1e9), 5.0);
        assert_eq!(ratio(1.0, 0.0), 0.0);
        assert_eq!(ratio(1.0, -1.0), 0.0);
        assert_eq!(ratio(f64::NAN, 1.0), 0.0);
        assert_eq!(ratio(3.0, 2.0), 1.5);
    }
}
