//! The shared counter-reconciliation checklist.
//!
//! Instrumented subsystems book counters at their event sites; reports
//! accumulate the same quantities independently. A [`Recon`] collects
//! the cross-checks between the two — exact for counters, to
//! accumulation tolerance for f64 sums — so the bench binaries
//! (`--bin trace`, `--bin cluster`) drive one checklist implementation
//! instead of hand-copying it, render the same JSON table, and exit
//! non-zero on any disagreement.

use crate::json::JsonWriter;

/// One reconciliation check: a trace-side value against its
/// report-side twin (condition-only checks record `1`/`0`).
#[derive(Clone, Debug, PartialEq)]
pub struct Check {
    /// Telemetry-side name of the quantity checked.
    pub name: String,
    /// What the trace recorded.
    pub traced: f64,
    /// What the report measured.
    pub reported: f64,
    /// Whether they agree.
    pub ok: bool,
}

/// A reconciliation checklist in progress. Failures are collected, not
/// fatal per-check — the driver reports them all, then exits non-zero.
#[derive(Clone, Debug)]
pub struct Recon {
    /// Every check run, in order.
    pub checks: Vec<Check>,
    rel_tol: f64,
}

impl Recon {
    /// A checklist whose [`Recon::close`] comparisons allow the given
    /// relative tolerance (floors at `1.0` absolute for tiny values).
    pub fn new(rel_tol: f64) -> Recon {
        Recon { checks: Vec::new(), rel_tol }
    }

    /// Records a condition-only check (no numeric twin).
    pub fn cond(&mut self, ok: bool, name: &str) {
        self.checks.push(Check {
            name: name.to_string(),
            traced: if ok { 1.0 } else { 0.0 },
            reported: 1.0,
            ok,
        });
    }

    /// Checks an exact counter against its report twin.
    pub fn exact(&mut self, name: &str, traced: u64, reported: u64) {
        self.checks.push(Check {
            name: name.to_string(),
            traced: traced as f64,
            reported: reported as f64,
            ok: traced == reported,
        });
    }

    /// Checks an accumulated f64 (histogram sum, simulated-time total)
    /// against its report twin to the checklist's relative tolerance.
    pub fn close(&mut self, name: &str, traced: f64, reported: f64) {
        let tol = self.rel_tol * traced.abs().max(reported.abs()).max(1.0);
        self.checks.push(Check {
            name: name.to_string(),
            traced,
            reported,
            ok: (traced - reported).abs() <= tol,
        });
    }

    /// Total checks run.
    pub fn total(&self) -> u64 {
        self.checks.len() as u64
    }

    /// Checks that disagreed.
    pub fn failures(&self) -> u64 {
        self.checks.iter().filter(|c| !c.ok).count() as u64
    }

    /// Checks that agreed.
    pub fn passed(&self) -> u64 {
        self.total() - self.failures()
    }

    /// Whether every check agreed.
    pub fn all_ok(&self) -> bool {
        self.failures() == 0
    }

    /// Prints one line per failed check to stderr, prefixed by `label`.
    pub fn eprint_failures(&self, label: &str) {
        for c in self.checks.iter().filter(|c| !c.ok) {
            eprintln!(
                "{label}: reconcile FAIL {}: traced {} != reported {}",
                c.name, c.traced, c.reported
            );
        }
    }

    /// Renders the checklist as a JSON array of
    /// `{name, traced, reported, ok}` rows.
    pub fn render(&self, w: &mut JsonWriter) {
        w.begin_arr();
        for c in &self.checks {
            w.begin_obj();
            w.field_str("name", &c.name);
            w.field_f64("traced", c.traced, 3);
            w.field_f64("reported", c.reported, 3);
            w.field_bool("ok", c.ok);
            w.end_obj();
        }
        w.end_arr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparators_classify_agreement() {
        let mut r = Recon::new(1e-9);
        r.exact("a", 5, 5);
        r.exact("b", 5, 6);
        r.close("c", 1e12, 1e12 + 1.0); // within 1e-9 relative
        r.close("d", 1.0, 3.0);
        r.cond(true, "e");
        assert_eq!(r.total(), 5);
        assert_eq!(r.failures(), 2);
        assert_eq!(r.passed(), 3);
        assert!(!r.all_ok());
        assert!(r.checks[2].ok, "relative tolerance floors at the magnitude");
    }

    #[test]
    fn render_emits_one_row_per_check() {
        let mut r = Recon::new(1e-6);
        r.exact("x", 1, 1);
        let mut w = JsonWriter::new();
        r.render(&mut w);
        let json = w.finish();
        assert!(json.contains("\"name\": \"x\""));
        assert!(json.contains("\"ok\": true"));
    }
}
