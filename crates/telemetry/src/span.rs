//! Spans, instant events, the streaming [`Sink`] trait, and the
//! [`Recorder`] that collects everything for export.
//!
//! Instrumented code is generic over `S: Sink`. With [`NoopSink`] the
//! calls monomorphize to empty inlined bodies and [`Sink::ENABLED`] is
//! `false`, so even argument construction can be skipped — tracing
//! costs nothing when it is off. With [`Recorder`] every event is kept,
//! merged deterministically, and exported.

use crate::metrics::Metrics;
use std::collections::BTreeMap;

/// Who an event belongs to: Chrome's `(pid, tid)` pair. The workspace
/// convention lives in [`crate::ids`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntityId {
    /// Process id — one per executor or device.
    pub pid: u32,
    /// Thread id — one per work stream of that executor.
    pub tid: u32,
}

/// A typed span/instant attribute value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A simulated-time or ratio value.
    F64(f64),
    /// A static label.
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

/// A named attribute.
pub type Attr = (&'static str, AttrValue);

/// One completed stage on an entity's simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// The entity the stage ran on.
    pub entity: EntityId,
    /// Stage name (e.g. `"serialize"`, `"gc.pause"`, `"wire"`).
    pub name: &'static str,
    /// Start on the simulated clock, nanoseconds.
    pub t0_ns: f64,
    /// End on the simulated clock, nanoseconds.
    pub t1_ns: f64,
    /// Attributes shown in the trace viewer's args panel.
    pub attrs: Vec<Attr>,
}

/// A causal edge between two entities' timelines: work at `src` (the
/// binding point `t0_ns`) caused work at `dst` (visible from `t1_ns`).
/// Rendered as a Chrome flow-event pair so Perfetto draws the arrow.
///
/// `id` must be unique among flows sharing a `name` within one trace;
/// emitters keep a monotonic per-subsystem counter (the event loops are
/// sequential on the simulated clock, so the numbering is
/// deterministic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowEvent {
    /// Flow id, unique per `name` within a trace.
    pub id: u64,
    /// Edge kind (e.g. `"flow.fetch"`, `"flow.recovery"`).
    pub name: &'static str,
    /// Where the cause happened.
    pub src: EntityId,
    /// When the cause happened, simulated nanoseconds.
    pub t0_ns: f64,
    /// Where the effect landed.
    pub dst: EntityId,
    /// When the effect became visible, simulated nanoseconds.
    pub t1_ns: f64,
}

/// One timestamped gauge sample — unlike [`crate::metrics::Gauge`]
/// (which only keeps an aggregate) these retain *when* each value was
/// observed, so a time-sliced timeline can be rebuilt after the run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// The entity the series belongs to (usually the driver).
    pub entity: EntityId,
    /// Series name (e.g. `"cluster.timeline.queue_depth"`).
    pub name: &'static str,
    /// Sample time, simulated nanoseconds.
    pub t_ns: f64,
    /// Sampled value.
    pub value: f64,
}

/// A point event on an entity's simulated timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Instant {
    /// The entity the event happened on.
    pub entity: EntityId,
    /// Event name (e.g. `"mapper.death"`, `"evict"`).
    pub name: &'static str,
    /// When, on the simulated clock, nanoseconds.
    pub t_ns: f64,
    /// Attributes shown in the trace viewer's args panel.
    pub attrs: Vec<Attr>,
}

/// A streaming telemetry sink.
///
/// Every method has an empty default body and [`Sink::ENABLED`]
/// defaults to `false`: a sink that overrides nothing ([`NoopSink`])
/// compiles away entirely. Instrumentation that must build strings or
/// compute deltas guards on `S::ENABLED` so that work is skipped too.
///
/// `Default + Send` let fan-out stages construct one private sink per
/// worker thread and merge them back (via [`Sink::absorb`]) in a fixed
/// entity order — the merge is deterministic for any thread count.
pub trait Sink: Default + Send {
    /// Whether this sink keeps anything. Instrumentation guards
    /// non-trivial event construction on this constant.
    const ENABLED: bool = false;

    /// Records a completed span.
    #[inline(always)]
    fn span(&mut self, _span: Span) {}

    /// Records an instant event.
    #[inline(always)]
    fn instant(&mut self, _event: Instant) {}

    /// Records a causal edge between two entities.
    #[inline(always)]
    fn flow(&mut self, _flow: FlowEvent) {}

    /// Records one timestamped gauge sample.
    #[inline(always)]
    fn sample(&mut self, _sample: Sample) {}

    /// Adds `_delta` to the named counter.
    #[inline(always)]
    fn count(&mut self, _name: &'static str, _delta: u64) {}

    /// Samples the named gauge.
    #[inline(always)]
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records one observation into the named histogram.
    #[inline(always)]
    fn observe(&mut self, _hist: &'static str, _value: f64) {}

    /// Names a trace process (an executor or device).
    #[inline(always)]
    fn name_process(&mut self, _pid: u32, _name: &str) {}

    /// Names a trace thread (a work stream).
    #[inline(always)]
    fn name_thread(&mut self, _pid: u32, _tid: u32, _name: &str) {}

    /// Shifts every recorded timestamp by `_delta_ns` — how a replayed
    /// timeline (a re-executed mapper) lands at its recovery position.
    #[inline(always)]
    fn shift(&mut self, _delta_ns: f64) {}

    /// Merges a child sink produced by a worker thread into this one.
    /// Callers invoke this in a fixed entity order, which makes the
    /// merged stream deterministic for any thread count.
    #[inline(always)]
    fn absorb(&mut self, _child: Self) {}
}

/// The sink that keeps nothing. All trait defaults: instrumented code
/// monomorphized over `NoopSink` carries no tracing cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {}

/// The collecting sink: keeps every span, instant, metric and name for
/// export.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// Recorded spans, in emission/merge order.
    pub spans: Vec<Span>,
    /// Recorded instant events, in emission/merge order.
    pub instants: Vec<Instant>,
    /// Recorded causal edges, in emission/merge order.
    pub flows: Vec<FlowEvent>,
    /// Recorded timestamped gauge samples, in emission/merge order.
    pub samples: Vec<Sample>,
    /// The metrics registry.
    pub metrics: Metrics,
    /// Process names by pid.
    pub process_names: BTreeMap<u32, String>,
    /// Thread names by `(pid, tid)`.
    pub thread_names: BTreeMap<(u32, u32), String>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Total recorded events (spans + instants).
    pub fn events(&self) -> usize {
        self.spans.len() + self.instants.len()
    }
}

impl Sink for Recorder {
    const ENABLED: bool = true;

    fn span(&mut self, span: Span) {
        debug_assert!(
            span.t1_ns >= span.t0_ns,
            "span {} ends before it starts",
            span.name
        );
        self.spans.push(span);
    }

    fn instant(&mut self, event: Instant) {
        self.instants.push(event);
    }

    fn flow(&mut self, flow: FlowEvent) {
        debug_assert!(
            flow.t1_ns >= flow.t0_ns,
            "flow {} arrives before it departs",
            flow.name
        );
        self.flows.push(flow);
    }

    fn sample(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    fn count(&mut self, name: &'static str, delta: u64) {
        self.metrics.count(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn observe(&mut self, hist: &'static str, value: f64) {
        self.metrics.observe(hist, value);
    }

    fn name_process(&mut self, pid: u32, name: &str) {
        self.process_names.entry(pid).or_insert_with(|| name.to_string());
    }

    fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.thread_names
            .entry((pid, tid))
            .or_insert_with(|| name.to_string());
    }

    fn shift(&mut self, delta_ns: f64) {
        for s in &mut self.spans {
            s.t0_ns += delta_ns;
            s.t1_ns += delta_ns;
        }
        for e in &mut self.instants {
            e.t_ns += delta_ns;
        }
        for f in &mut self.flows {
            f.t0_ns += delta_ns;
            f.t1_ns += delta_ns;
        }
        for s in &mut self.samples {
            s.t_ns += delta_ns;
        }
    }

    fn absorb(&mut self, child: Recorder) {
        self.spans.extend(child.spans);
        self.instants.extend(child.instants);
        self.flows.extend(child.flows);
        self.samples.extend(child.samples);
        self.metrics.merge(child.metrics);
        for (pid, name) in child.process_names {
            self.process_names.entry(pid).or_insert(name);
        }
        for (key, name) in child.thread_names {
            self.thread_names.entry(key).or_insert(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u32, t0: f64, t1: f64) -> Span {
        Span {
            entity: EntityId { pid, tid: 0 },
            name: "work",
            t0_ns: t0,
            t1_ns: t1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn recorder_keeps_and_shifts() {
        let mut r = Recorder::new();
        r.span(span(1, 10.0, 20.0));
        r.instant(Instant {
            entity: EntityId { pid: 1, tid: 0 },
            name: "tick",
            t_ns: 15.0,
            attrs: Vec::new(),
        });
        r.shift(100.0);
        assert_eq!(r.spans[0].t0_ns, 110.0);
        assert_eq!(r.spans[0].t1_ns, 120.0);
        assert_eq!(r.instants[0].t_ns, 115.0);
    }

    #[test]
    fn absorb_merges_in_call_order() {
        let mut parent = Recorder::new();
        let mut a = Recorder::new();
        a.span(span(1, 0.0, 1.0));
        a.count("n", 2);
        let mut b = Recorder::new();
        b.span(span(2, 0.0, 1.0));
        b.count("n", 3);
        parent.absorb(a);
        parent.absorb(b);
        assert_eq!(parent.spans.len(), 2);
        assert_eq!(parent.spans[0].entity.pid, 1);
        assert_eq!(parent.metrics.counter("n"), 5);
    }

    #[test]
    fn flows_and_samples_shift_and_absorb() {
        let mut parent = Recorder::new();
        let mut child = Recorder::new();
        child.flow(FlowEvent {
            id: 0,
            name: "flow.fetch",
            src: EntityId { pid: 1, tid: 0 },
            t0_ns: 5.0,
            dst: EntityId { pid: 2, tid: 0 },
            t1_ns: 9.0,
        });
        child.sample(Sample {
            entity: EntityId { pid: 1, tid: 0 },
            name: "depth",
            t_ns: 7.0,
            value: 3.0,
        });
        child.shift(100.0);
        parent.absorb(child);
        assert_eq!(parent.flows.len(), 1);
        assert_eq!(parent.flows[0].t0_ns, 105.0);
        assert_eq!(parent.flows[0].t1_ns, 109.0);
        assert_eq!(parent.samples[0].t_ns, 107.0);
    }

    #[test]
    fn first_name_wins() {
        let mut r = Recorder::new();
        r.name_process(7, "mapper 7");
        r.name_process(7, "other");
        assert_eq!(r.process_names[&7], "mapper 7");
    }

    #[test]
    fn noop_is_default_constructible() {
        // The whole point: generic call sites can make one per worker.
        fn takes<S: Sink>() -> S {
            S::default()
        }
        let _: NoopSink = takes();
        assert!(!NoopSink::ENABLED);
        assert!(Recorder::ENABLED);
    }
}
