//! Golden-file test: the Chrome trace export of a small hand-built
//! recording is pinned byte-for-byte. Any change to the exporter's
//! format, ordering, or unit conversion shows up here first.

use telemetry::span::{FlowEvent, Sample, Span};
use telemetry::{chrome_trace, EntityId, Instant, Recorder, Sink};

const GOLDEN: &str = r#"{"traceEvents":[
{"ph":"M","name":"process_name","pid":1,"args":{"name":"driver"}},
{"ph":"M","name":"process_name","pid":100,"args":{"name":"mapper 0"}},
{"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"main"}},
{"ph":"M","name":"thread_name","pid":100,"tid":1,"args":{"name":"spill disk"}},
{"ph":"X","pid":1,"tid":0,"ts":1.000,"dur":2.500,"name":"serialize","args":{"bytes":256,"backend":"kryo"}},
{"ph":"i","pid":1,"tid":0,"ts":2.000,"s":"t","name":"evict","args":{"block":3}},
{"ph":"C","pid":1,"tid":0,"ts":2.000,"name":"queue_depth","args":{"value":2.000}},
{"ph":"X","pid":100,"tid":1,"ts":2.000,"dur":0.001,"name":"spill.write"},
{"ph":"s","pid":1,"tid":0,"ts":3.500,"id":0,"cat":"flow.fetch","name":"flow.fetch"},
{"ph":"f","bp":"e","pid":100,"tid":1,"ts":4.000,"id":0,"cat":"flow.fetch","name":"flow.fetch"},
{"ph":"i","pid":100,"tid":1,"ts":4.750,"s":"t","name":"quote \"q\""}
],"displayTimeUnit":"ns"}
"#;

#[test]
fn chrome_trace_matches_golden() {
    let mut r = Recorder::new();
    // Registration order scrambled on purpose: export sorts by id.
    r.name_process(100, "mapper 0");
    r.name_process(1, "driver");
    r.name_thread(100, 1, "spill disk");
    r.name_thread(1, 0, "main");

    r.span(Span {
        entity: EntityId { pid: 100, tid: 1 },
        name: "spill.write",
        t0_ns: 2000.0,
        t1_ns: 2001.0,
        attrs: Vec::new(),
    });
    r.span(Span {
        entity: EntityId { pid: 1, tid: 0 },
        name: "serialize",
        t0_ns: 1000.0,
        t1_ns: 3500.0,
        attrs: vec![("bytes", 256u64.into()), ("backend", "kryo".into())],
    });
    r.instant(Instant {
        entity: EntityId { pid: 1, tid: 0 },
        name: "evict",
        t_ns: 2000.0,
        attrs: vec![("block", 3u64.into())],
    });
    r.instant(Instant {
        entity: EntityId { pid: 100, tid: 1 },
        name: "quote \"q\"",
        t_ns: 4750.0,
        attrs: Vec::new(),
    });
    // A causal edge: departs the driver when the serialize span ends,
    // lands on the spill lane — rendered as an s/f flow pair with the
    // id scoped by cat.
    r.flow(FlowEvent {
        id: 0,
        name: "flow.fetch",
        src: EntityId { pid: 1, tid: 0 },
        t0_ns: 3500.0,
        dst: EntityId { pid: 100, tid: 1 },
        t1_ns: 4000.0,
    });
    // A gauge sample at the eviction instant ("evict" sorts first).
    r.sample(Sample {
        entity: EntityId { pid: 1, tid: 0 },
        name: "queue_depth",
        t_ns: 2000.0,
        value: 2.0,
    });

    assert_eq!(chrome_trace(&r), GOLDEN);
}
