//! Seeded property test: for a stream of pseudo-random observations,
//! the bucketed percentile estimate must bracket the exact percentile
//! computed by a naive sort of the same stream.

use telemetry::Histogram;

/// The same multiplier/increment LCG the simulators use — no external
/// randomness, identical stream every run.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A value in `[0, 2^40)` with a rough log-uniform spread, so the
    /// stream exercises many buckets including overflow.
    fn value(&mut self) -> f64 {
        let shift = self.next_u64() % 41;
        let mantissa = self.next_u64() % 1000;
        ((1u64 << shift) as f64) + mantissa as f64 / 7.0
    }
}

/// Exact `q`-quantile by sorting: the same 1-based-rank convention the
/// histogram documents (`rank = ceil(q * n)` clamped to `[1, n]`).
fn naive_percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn bucketed_percentiles_bracket_naive_sort() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0xDEAD_BEEF] {
        let mut rng = Lcg(seed);
        let values: Vec<f64> = (0..4096).map(|_| rng.value()).collect();

        let mut h = Histogram::default_bounds();
        for &v in &values {
            h.record(v);
        }

        for q in [0.0, 0.10, 0.50, 0.90, 0.99, 1.0] {
            let exact = naive_percentile(&values, q);
            let (lo, hi) = h.percentile_bounds(q).unwrap();
            assert!(
                lo <= exact && exact <= hi,
                "seed {seed:#x} q {q}: exact {exact} outside [{lo}, {hi}]"
            );
            // The point estimate is the interval's upper edge.
            assert_eq!(h.percentile(q).unwrap(), hi);
        }
    }
}

#[test]
fn split_then_merged_histogram_matches_single_recording() {
    let mut rng = Lcg(42);
    let values: Vec<f64> = (0..1000).map(|_| rng.value()).collect();

    let mut whole = Histogram::default_bounds();
    for &v in &values {
        whole.record(v);
    }

    // Record the same stream through 4 children merged in order, as the
    // fan-out workers do.
    let mut merged = Histogram::default_bounds();
    for chunk in values.chunks(250) {
        let mut child = Histogram::default_bounds();
        for &v in chunk {
            child.record(v);
        }
        merged.merge(&child);
    }

    // Bucket counts, totals and extremes match exactly; the f64 sum is
    // associativity-sensitive, so it only matches to rounding error.
    assert_eq!(whole.nonzero_buckets(), merged.nonzero_buckets());
    assert_eq!(whole.count, merged.count);
    assert_eq!(whole.min, merged.min);
    assert_eq!(whole.max, merged.max);
    let rel = (whole.sum - merged.sum).abs() / whole.sum.abs();
    assert!(rel < 1e-12, "sum drifted: {} vs {}", whole.sum, merged.sum);
}
