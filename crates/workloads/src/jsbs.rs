//! A JSBS-like serializer benchmark suite (paper §VI-C, Fig. 12).
//!
//! The Java Serialization Benchmark Suite repeatedly serializes a
//! predefined "media content" object with ~90 serializer libraries and
//! compares throughput and size. We reproduce:
//!
//! * the **media-content object** — a `MediaContent` holding a `Media`
//!   record (strings, numeric metadata, a person list) and two `Image`
//!   records, built on the `sdheap` object model;
//! * a **catalog of 88 libraries**. Five are fully implemented,
//!   mechanistic baselines of this repository (`Java`, `Kryo`, `Skyway`,
//!   a JSON-style text serializer, a protobuf-style codegen serializer);
//!   the rest are modeled profiles spanning JSBS's characteristic
//!   classes (text/JSON, XML, string-typed binary, ID-typed binary,
//!   codegen, hand-optimized manual), each with a deterministic
//!   throughput/size factor *relative to the measured Java S/D run* —
//!   the population Cereal's Fig. 12 geomean is computed against.
//!
//! The profile parameters are bracketed by the two mechanistically
//! implemented endpoints (Java S/D at 1×, Kryo-manual as the fastest
//! software library), so the geomean shape is anchored, not free.

use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};

/// Builds the JSBS media-content object graph.
///
/// Shape (after JSBS's `MediaContent`):
/// `MediaContent { media: Media, images: Image[2] }`,
/// `Media { uri: char[], title: char[], width, height, format: char[],
/// duration, size, bitrate, persons: char[][], player, copyright }`,
/// `Image { uri: char[], title: char[], width, height, size }`.
pub fn media_content() -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 18);
    // Strings are char arrays packed four 2 B chars per heap word, as
    // HotSpot packs char[] backing stores — so every serializer pays
    // 2 B/char, not one word per char.
    let chars = b.array_klass("char[]", FieldKind::Value(ValueType::Long));
    let strings = b.array_klass("String[]", FieldKind::Ref);
    let media = b.klass(
        "Media",
        vec![
            FieldKind::Ref,                        // uri
            FieldKind::Ref,                        // title
            FieldKind::Value(ValueType::Int),      // width
            FieldKind::Value(ValueType::Int),      // height
            FieldKind::Ref,                        // format
            FieldKind::Value(ValueType::Long),     // duration
            FieldKind::Value(ValueType::Long),     // size
            FieldKind::Value(ValueType::Int),      // bitrate
            FieldKind::Ref,                        // persons
            FieldKind::Value(ValueType::Int),      // player
            FieldKind::Ref,                        // copyright (nullable)
        ],
    );
    let image = b.klass(
        "Image",
        vec![
            FieldKind::Ref,                    // uri
            FieldKind::Ref,                    // title
            FieldKind::Value(ValueType::Int),  // width
            FieldKind::Value(ValueType::Int),  // height
            FieldKind::Value(ValueType::Int),  // size
        ],
    );
    let content = b.klass(
        "MediaContent",
        vec![FieldKind::Ref, FieldKind::Ref], // media, images
    );
    let images = b.array_klass("Image[]", FieldKind::Ref);

    let string = |b: &mut GraphBuilder, s: &str| -> Addr {
        b.value_array(chars, &pack_chars(s)).expect("sized")
    };

    let uri = string(&mut b, "http://javaone.com/keynote.mpg");
    let title = string(&mut b, "Javaone Keynote");
    let format = string(&mut b, "video/mpg4");
    let p1 = string(&mut b, "Bill Gates");
    let p2 = string(&mut b, "Steve Jobs");
    let persons = b.ref_array(strings, &[p1, p2]).expect("sized");
    let m = b
        .object(
            media,
            &[
                Init::Ref(uri),
                Init::Ref(title),
                Init::Val(640),
                Init::Val(480),
                Init::Ref(format),
                Init::Val(18_000_000),
                Init::Val(58_982_400),
                Init::Val(262_144),
                Init::Ref(persons),
                Init::Val(0), // JAVA player
                Init::Null,   // no copyright
            ],
        )
        .expect("sized");

    let img = |b: &mut GraphBuilder, u: &str, t: &str, w: u64, h: u64, s: u64| -> Addr {
        let uri = string_inner(b, chars, u);
        let title = string_inner(b, chars, t);
        b.object(
            image,
            &[Init::Ref(uri), Init::Ref(title), Init::Val(w), Init::Val(h), Init::Val(s)],
        )
        .expect("sized")
    };
    let i1 = img(&mut b, "http://javaone.com/keynote_large.jpg", "Javaone Keynote", 1024, 768, 0);
    let i2 = img(&mut b, "http://javaone.com/keynote_small.jpg", "Javaone Keynote", 320, 240, 1);
    let imgs = b.ref_array(images, &[i1, i2]).expect("sized");
    let root = b
        .object(content, &[Init::Ref(m), Init::Ref(imgs)])
        .expect("sized");
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

fn string_inner(b: &mut GraphBuilder, chars: sdheap::KlassId, s: &str) -> Addr {
    b.value_array(chars, &pack_chars(s)).expect("sized")
}

/// Packs UTF-16-ish chars four per 8 B word.
fn pack_chars(s: &str) -> Vec<u64> {
    s.chars()
        .collect::<Vec<_>>()
        .chunks(4)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &c)| acc | (u64::from(c as u16) << (16 * i)))
        })
        .collect()
}

/// The characteristic library classes JSBS contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LibClass {
    /// Fully implemented in this repository; measured, not modeled.
    Implemented,
    /// Text/JSON serializers (gson, jackson/json, …).
    Json,
    /// XML serializers (xstream, jaxb, …).
    Xml,
    /// Binary with string-typed metadata (hessian, java-built-in kin).
    BinaryStringTyped,
    /// Binary with integer type IDs (kryo-like, fst, protostuff runtime).
    BinaryIdTyped,
    /// Compile-time generated code (protobuf, thrift, avro-specific).
    Codegen,
    /// Hand-optimized manual serializers (kryo-manual, wire hand-rolled).
    Manual,
}

/// One library of the suite.
#[derive(Clone, Debug)]
pub struct LibraryProfile {
    /// Library name.
    pub name: String,
    /// Class of implementation.
    pub class: LibClass,
    /// Serialization time relative to measured Java S/D (lower = faster).
    pub ser_rel: f64,
    /// Deserialization time relative to measured Java S/D.
    pub de_rel: f64,
    /// Serialized size relative to measured Java S/D.
    pub size_rel: f64,
}

/// The 88-library catalog. `Implemented` entries have factor 0 — the
/// harness substitutes real measurements for them.
pub fn catalog() -> Vec<LibraryProfile> {
    let mut rng = Rng::new(0x4A5B5);
    let mut out = vec![
        LibraryProfile {
            name: "java-built-in".into(),
            class: LibClass::Implemented,
            ser_rel: 0.0,
            de_rel: 0.0,
            size_rel: 0.0,
        },
        LibraryProfile {
            name: "kryo".into(),
            class: LibClass::Implemented,
            ser_rel: 0.0,
            de_rel: 0.0,
            size_rel: 0.0,
        },
        LibraryProfile {
            name: "skyway".into(),
            class: LibClass::Implemented,
            ser_rel: 0.0,
            de_rel: 0.0,
            size_rel: 0.0,
        },
        LibraryProfile {
            name: "json-gson-like".into(),
            class: LibClass::Implemented,
            ser_rel: 0.0,
            de_rel: 0.0,
            size_rel: 0.0,
        },
        LibraryProfile {
            name: "proto-codegen-like".into(),
            class: LibClass::Implemented,
            ser_rel: 0.0,
            de_rel: 0.0,
            size_rel: 0.0,
        },
    ];
    // (class, base names, count, ser range, de range, size range) — time
    // factors relative to Java S/D = 1.0. Ranges bracket published JSBS
    // results: XML slowest, manual binary fastest.
    type Family = (
        &'static str,
        LibClass,
        usize,
        (f64, f64),
        (f64, f64),
        (f64, f64),
    );
    let families: &[Family] = &[
        ("json", LibClass::Json, 17, (0.4, 2.5), (0.3, 1.8), (0.7, 1.6)),
        ("xml", LibClass::Xml, 12, (1.2, 4.0), (1.0, 3.5), (1.2, 2.5)),
        ("hessian", LibClass::BinaryStringTyped, 10, (0.6, 1.6), (0.4, 1.2), (0.6, 1.1)),
        ("binary", LibClass::BinaryIdTyped, 22, (0.25, 0.8), (0.04, 0.3), (0.35, 0.8)),
        ("codegen", LibClass::Codegen, 13, (0.2, 0.6), (0.03, 0.15), (0.3, 0.6)),
        ("manual", LibClass::Manual, 9, (0.15, 0.45), (0.02, 0.08), (0.25, 0.5)),
    ];
    for (base, class, n, ser, de, size) in families {
        for i in 0..*n {
            out.push(LibraryProfile {
                name: format!("{base}-{i}"),
                class: *class,
                ser_rel: rng.gen_range_f64(ser.0, ser.1),
                de_rel: rng.gen_range_f64(de.0, de.1),
                size_rel: rng.gen_range_f64(size.0, size.1),
            });
        }
    }
    debug_assert_eq!(out.len(), 88);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::GraphStats;

    #[test]
    fn media_content_shape() {
        let (heap, reg, root) = media_content();
        let s = GraphStats::measure(&heap, &reg, root);
        // content + media + persons[] + 2 persons + uri/title/format +
        // images[] + 2 images + 4 image strings = 15 objects.
        assert_eq!(s.objects, 15);
        assert!(s.total_bytes > 500, "strings give it some body: {}", s.total_bytes);
        // The copyright field is null.
        let media = heap.ref_field(root, 0).unwrap();
        assert_eq!(heap.ref_field(media, 10), None);
    }

    #[test]
    fn media_content_is_deterministic() {
        let (h1, r1, root1) = media_content();
        let (h2, _, root2) = media_content();
        assert!(sdheap::isomorphic_with(
            &h1,
            &r1,
            root1,
            &h2,
            root2,
            sdheap::IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn catalog_has_88_entries() {
        let c = catalog();
        assert_eq!(c.len(), 88);
        assert_eq!(
            c.iter().filter(|l| l.class == LibClass::Implemented).count(),
            5
        );
        // Deterministic across calls.
        let c2 = catalog();
        assert_eq!(c[10].ser_rel, c2[10].ser_rel);
    }

    #[test]
    fn modeled_factors_are_bracketed() {
        for lib in catalog() {
            if lib.class == LibClass::Implemented {
                continue;
            }
            assert!(lib.ser_rel > 0.1 && lib.ser_rel < 5.0, "{}", lib.name);
            assert!(lib.de_rel > 0.01 && lib.de_rel < 5.0, "{}", lib.name);
            assert!(lib.size_rel > 0.2 && lib.size_rel < 3.0, "{}", lib.name);
        }
    }

    #[test]
    fn manual_libraries_are_fastest_class() {
        let c = catalog();
        let avg = |class: LibClass| {
            let v: Vec<f64> = c
                .iter()
                .filter(|l| l.class == class)
                .map(|l| l.de_rel)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(LibClass::Manual) < avg(LibClass::BinaryIdTyped));
        assert!(avg(LibClass::BinaryIdTyped) < avg(LibClass::Json));
        assert!(avg(LibClass::Json) < avg(LibClass::Xml));
    }
}
