//! `workloads` — the evaluation workload suite of the Cereal paper.
//!
//! * [`micro`] — the Tree/List/Graph microbenchmarks of Table II and
//!   Fig. 9, at paper scale or deterministic scaled-down variants;
//! * [`jsbs`] — a JSBS-like serializer benchmark suite: the predefined
//!   media-content object plus the 88-library catalog behind Fig. 12;
//! * [`spark`] — the six HiBench/Spark applications of Table III, as
//!   batched record datasets with each app's characteristic shape, and
//!   the Fig. 2-calibrated phase model used by Figs. 13–14;
//! * [`zipf`] — a Zipf(θ) rank sampler over the in-repo PRNG, behind
//!   the aggregation workload's [`KeySkew`] option and the block
//!   store's skewed re-read pattern.

pub mod jsbs;
pub mod micro;
pub mod spark;
pub mod zipf;

pub use jsbs::{catalog, media_content, LibClass, LibraryProfile};
pub use micro::{MicroBench, Scale};
pub use spark::agg::{AggConfig, AggPartition, KeySkew};
pub use spark::{phases, SparkApp, SparkDataset, SparkScale};
pub use zipf::{SkewSampler, Zipf};
