//! Microbenchmarks: Tree, List and Graph object shapes (paper §VI-A,
//! Fig. 9, Table II).
//!
//! Each benchmark builds an object graph with the paper's shape at one of
//! three scales: the paper's Table II sizes, a default `Scaled` variant
//! (1/64, for laptop-speed experiment runs — speedups are ratios and
//! insensitive to this), and `Tiny` for tests. The scale in use is always
//! printed by the experiment harness.

use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};

/// The six Table II configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MicroBench {
    /// Binary tree, 2,097,150 nodes at paper scale.
    TreeNarrow,
    /// 8-ary tree, 19,173,960 nodes at paper scale.
    TreeWide,
    /// Linked list of 524,288 nodes.
    ListSmall,
    /// Linked list of 2,097,152 nodes.
    ListLarge,
    /// 4,096 nodes, 1 out-edge each.
    GraphSparse,
    /// 4,096 nodes, 4,095 out-edges each (fully connected).
    GraphDense,
}

/// Workload size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Table II sizes (slow; multi-GB heaps for TreeWide).
    Paper,
    /// ~1/64 of the paper sizes — the default for experiment runs.
    Scaled,
    /// Hundreds of objects — for unit tests.
    Tiny,
}

impl MicroBench {
    /// All six benchmarks in Table II order.
    pub fn all() -> [MicroBench; 6] {
        [
            MicroBench::TreeNarrow,
            MicroBench::TreeWide,
            MicroBench::ListSmall,
            MicroBench::ListLarge,
            MicroBench::GraphSparse,
            MicroBench::GraphDense,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MicroBench::TreeNarrow => "Tree-narrow",
            MicroBench::TreeWide => "Tree-wide",
            MicroBench::ListSmall => "List-small",
            MicroBench::ListLarge => "List-large",
            MicroBench::GraphSparse => "Graph-sparse",
            MicroBench::GraphDense => "Graph-dense",
        }
    }

    /// (fanout/edges, node count) at the given scale.
    pub fn params(&self, scale: Scale) -> (usize, usize) {
        // Table II: tree(narrow leaf 2 / wide leaf 8), list lengths,
        // graph(4096 nodes, 1 or 4095 edges).
        match (self, scale) {
            (MicroBench::TreeNarrow, Scale::Paper) => (2, 2_097_150),
            (MicroBench::TreeNarrow, Scale::Scaled) => (2, 32_766),
            (MicroBench::TreeNarrow, Scale::Tiny) => (2, 254),
            (MicroBench::TreeWide, Scale::Paper) => (8, 19_173_960),
            (MicroBench::TreeWide, Scale::Scaled) => (8, 299_592),
            (MicroBench::TreeWide, Scale::Tiny) => (8, 584),
            (MicroBench::ListSmall, Scale::Paper) => (1, 524_288),
            (MicroBench::ListSmall, Scale::Scaled) => (1, 8_192),
            (MicroBench::ListSmall, Scale::Tiny) => (1, 128),
            (MicroBench::ListLarge, Scale::Paper) => (1, 2_097_152),
            (MicroBench::ListLarge, Scale::Scaled) => (1, 32_768),
            (MicroBench::ListLarge, Scale::Tiny) => (1, 512),
            (MicroBench::GraphSparse, Scale::Paper) => (1, 4_096),
            (MicroBench::GraphSparse, Scale::Scaled) => (1, 4_096),
            (MicroBench::GraphSparse, Scale::Tiny) => (1, 64),
            (MicroBench::GraphDense, Scale::Paper) => (4_095, 4_096),
            (MicroBench::GraphDense, Scale::Scaled) => (511, 512),
            (MicroBench::GraphDense, Scale::Tiny) => (63, 64),
        }
    }

    /// Builds the benchmark's object graph.
    pub fn build(&self, scale: Scale) -> (Heap, KlassRegistry, Addr) {
        let (arity, count) = self.params(scale);
        match self {
            MicroBench::TreeNarrow | MicroBench::TreeWide => build_tree(arity, count),
            MicroBench::ListSmall | MicroBench::ListLarge => build_list(count),
            MicroBench::GraphSparse | MicroBench::GraphDense => build_graph(count, arity),
        }
    }
}

/// Heap budget: objects are ≤ 48 B + edge arrays; 4× headroom.
fn heap_bytes_for(objects: usize, extra_words_per_obj: usize) -> u64 {
    ((objects * (6 + extra_words_per_obj) * 8) as u64 * 4).max(1 << 16)
}

/// A `fanout`-ary tree with `count` nodes (Fig. 9(a)): each node holds a
/// payload and `fanout` child references.
fn build_tree(fanout: usize, count: usize) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(heap_bytes_for(count, fanout));
    let kinds: Vec<FieldKind> = std::iter::once(FieldKind::Value(ValueType::Long))
        .chain(std::iter::repeat_n(FieldKind::Ref, fanout))
        .collect();
    let node = b.klass(format!("TreeNode{fanout}"), kinds);

    // Plan level sizes top-down (1, fanout, fanout², …, truncated to
    // `count` total), then build bottom-up so children exist before their
    // parents — no recursion, exact node count.
    let mut levels = Vec::new();
    let mut total = 0usize;
    let mut width = 1usize;
    while total < count {
        let take = width.min(count - total);
        levels.push(take);
        total += take;
        width = width.saturating_mul(fanout);
    }
    let mut below: Vec<Addr> = Vec::new();
    for &n in levels.iter().rev() {
        let mut level = Vec::with_capacity(n);
        let mut child_iter = below.iter().copied();
        for i in 0..n {
            let mut inits = vec![Init::Val(i as u64)];
            for _ in 0..fanout {
                inits.push(match child_iter.next() {
                    Some(c) => Init::Ref(c),
                    None => Init::Null,
                });
            }
            level.push(b.object(node, &inits).expect("heap sized for workload"));
        }
        below = level;
    }
    let root = below[0];
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

/// A singly linked list of `count` nodes (Fig. 9(b)).
fn build_list(count: usize) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(heap_bytes_for(count, 1));
    let node = b.klass(
        "ListNode",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
    );
    let mut head = b.object(node, &[Init::Val(0), Init::Null]).expect("sized");
    for i in 1..count as u64 {
        head = b
            .object(node, &[Init::Val(i), Init::Ref(head)])
            .expect("sized");
    }
    let (heap, reg) = b.finish();
    (heap, reg, head)
}

/// A random directed graph (Fig. 9(c)): `nodes` nodes, each with an
/// `edges`-slot adjacency array of references to random nodes.
fn build_graph(nodes: usize, edges: usize) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(heap_bytes_for(nodes, edges + 6));
    let node = b.klass(
        "GraphNode",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
    );
    let adj = b.array_klass("GraphNode[]", FieldKind::Ref);
    let mut rng = Rng::new(0xCE7EA1);

    let mut addrs = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let a = b.object(node, &[Init::Val(i as u64), Init::Null]).expect("sized");
        addrs.push(a);
    }
    for &a in &addrs {
        let arr = b
            .ref_array(adj, &vec![Addr::NULL; edges])
            .expect("sized");
        for slot in 0..edges {
            let t = addrs[rng.gen_range_usize(0, nodes)];
            b.set_array_ref(arr, slot, t);
        }
        b.link(a, 1, arr);
    }
    // Chain every node from the root so the whole graph is reachable even
    // if random edges leave islands: node 0's adjacency covers others via
    // randomness at dense settings; for sparse settings we root a spine.
    let spine = b.ref_array(adj, &addrs).expect("sized");
    let root = b.object(node, &[Init::Val(u64::MAX), Init::Ref(spine)]).expect("sized");
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::{reachable, GraphStats, Reachable};

    #[test]
    fn tree_narrow_has_requested_nodes() {
        let (heap, reg, root) = MicroBench::TreeNarrow.build(Scale::Tiny);
        let n = reachable(&heap, &reg, root, Reachable::DepthFirst).len();
        // Exact count (+ up to 1 adoption root).
        assert!((254..=256).contains(&n), "got {n}");
    }

    #[test]
    fn tree_wide_has_higher_fanout() {
        let (heap, reg, root) = MicroBench::TreeWide.build(Scale::Tiny);
        let view = heap.object(&reg, root);
        assert_eq!(view.ref_offsets().len(), 8);
        let s = GraphStats::measure(&heap, &reg, root);
        assert!(s.objects >= 584);
    }

    #[test]
    fn lists_are_chains() {
        let (heap, reg, root) = MicroBench::ListSmall.build(Scale::Tiny);
        let s = GraphStats::measure(&heap, &reg, root);
        assert_eq!(s.objects, 128);
        assert_eq!(s.live_refs, 127, "a chain has n-1 links");
    }

    #[test]
    fn graphs_are_fully_reachable_and_ref_heavy() {
        for bench in [MicroBench::GraphSparse, MicroBench::GraphDense] {
            let (heap, reg, root) = bench.build(Scale::Tiny);
            let s = GraphStats::measure(&heap, &reg, root);
            // 64 nodes + 64 adjacency arrays + spine + root.
            assert!(s.objects >= 64 * 2, "{}: {} objects", bench.name(), s.objects);
        }
        let (heap, reg, root) = MicroBench::GraphDense.build(Scale::Tiny);
        let dense = GraphStats::measure(&heap, &reg, root);
        let (h2, r2, root2) = MicroBench::GraphSparse.build(Scale::Tiny);
        let sparse = GraphStats::measure(&h2, &r2, root2);
        assert!(
            dense.ref_slots > sparse.ref_slots * 10,
            "dense {} vs sparse {}",
            dense.ref_slots,
            sparse.ref_slots
        );
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let (h1, r1, root1) = MicroBench::GraphSparse.build(Scale::Tiny);
        let (h2, _, root2) = MicroBench::GraphSparse.build(Scale::Tiny);
        assert!(sdheap::isomorphic_with(
            &h1,
            &r1,
            root1,
            &h2,
            root2,
            sdheap::IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn paper_scale_params_match_table2() {
        assert_eq!(MicroBench::TreeNarrow.params(Scale::Paper), (2, 2_097_150));
        assert_eq!(MicroBench::TreeWide.params(Scale::Paper), (8, 19_173_960));
        assert_eq!(MicroBench::ListSmall.params(Scale::Paper), (1, 524_288));
        assert_eq!(MicroBench::ListLarge.params(Scale::Paper), (1, 2_097_152));
        assert_eq!(MicroBench::GraphSparse.params(Scale::Paper), (1, 4_096));
        assert_eq!(MicroBench::GraphDense.params(Scale::Paper), (4_095, 4_096));
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<_> = MicroBench::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "Tree-narrow",
                "Tree-wide",
                "List-small",
                "List-large",
                "Graph-sparse",
                "Graph-dense"
            ]
        );
    }
}
