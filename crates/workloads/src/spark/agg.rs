//! Spark-like aggregation (`reduceByKey`) shuffle workload.
//!
//! The canonical Spark shuffle: every mapper holds a partition of keyed
//! event records, partitions them by `key % reducers`, serializes each
//! partition, and ships it; reducers deserialize and fold `(count, sum)`
//! per key. This module generates the *map-side inputs* — one
//! independent heap per mapper, all sharing an identically-constructed
//! klass registry so any executor (or a reducer with
//! [`AggConfig::registry`]) can decode any other's streams.
//!
//! Record shape, chosen so serializers do representative work:
//!
//! ```text
//! Event { key: long, value: double, payload: ref } -> long[PAYLOAD_WORDS]
//! ```
//!
//! Generation is deterministic per `(seed, mapper)`, and
//! [`AggConfig::expected_fold`] recomputes the exact aggregation result
//! (same f64 accumulation order as a shuffle that preserves per-mapper
//! record order) without touching a heap — the shuffle service's
//! correctness anchor.

use crate::zipf::Zipf;
use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassId, KlassRegistry, ValueType};
use std::collections::BTreeMap;

/// Words in each record's payload array.
pub const PAYLOAD_WORDS: usize = 8;

/// Approximate heap bytes per record: Event (3 header + 3 fields) plus
/// its payload array (3 header + 1 length + `PAYLOAD_WORDS`), used by
/// the shuffle service's coalescing estimate.
pub const RECORD_HEAP_BYTES: u64 = (6 + 4 + PAYLOAD_WORDS as u64) * 8;

/// Key-popularity distribution of the generated records.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeySkew {
    /// Keys drawn uniformly from `[0, distinct_keys)`.
    Uniform,
    /// Keys drawn Zipf(θ)-skewed: key `k` has probability `∝ (k+1)^-θ`,
    /// so key 0 is the hottest — and lands on reducer 0 under the
    /// shuffle's `key % reducers` routing.
    Zipf(f64),
}

impl KeySkew {
    /// Display form used in report JSON (`"uniform"`, `"zipf(1.10)"`).
    pub fn label(&self) -> String {
        match self {
            KeySkew::Uniform => "uniform".to_string(),
            KeySkew::Zipf(theta) => format!("zipf({theta:.2})"),
        }
    }
}

/// One mapper's key source: uniform draw or a precomputed Zipf CDF.
enum KeySampler {
    Uniform(u64),
    Zipf(Zipf),
}

impl KeySampler {
    fn draw(&self, rng: &mut Rng) -> u64 {
        match self {
            KeySampler::Uniform(n) => rng.gen_range_u64(0, *n),
            KeySampler::Zipf(z) => z.sample(rng),
        }
    }
}

/// Aggregation dataset parameters.
#[derive(Clone, Copy, Debug)]
pub struct AggConfig {
    /// Map-side executors (each gets an independent partition + heap).
    pub mappers: usize,
    /// Records per mapper.
    pub records_per_mapper: usize,
    /// Key space: keys are drawn from `[0, distinct_keys)`.
    pub distinct_keys: u64,
    /// Key-popularity distribution.
    pub skew: KeySkew,
    /// Base PRNG seed; mapper `m` derives its own stream from it.
    pub seed: u64,
}

/// One mapper's generated partition.
#[derive(Debug)]
pub struct AggPartition {
    /// The mapper's private heap.
    pub heap: Heap,
    /// Klass registry — identical (ids and names) for every mapper of
    /// the same config.
    pub reg: KlassRegistry,
    /// The partition's records, in generation order.
    pub records: Vec<Addr>,
    /// `Object[]` klass for coalescing records into shipped batches.
    pub batch_klass: KlassId,
}

impl AggConfig {
    /// Heap capacity each executor needs: the records themselves plus
    /// headroom for coalesced batch arrays (and a reducer's
    /// reconstruction of any single shipped batch fits too).
    pub fn heap_capacity(&self) -> u64 {
        (self.records_per_mapper as u64 * RECORD_HEAP_BYTES) * 2 + (1 << 16)
    }

    fn rng_for(&self, mapper: usize) -> Rng {
        Rng::new(self.seed ^ (mapper as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn key_sampler(&self) -> KeySampler {
        match self.skew {
            KeySkew::Uniform => KeySampler::Uniform(self.distinct_keys),
            KeySkew::Zipf(theta) => KeySampler::Zipf(Zipf::new(self.distinct_keys, theta)),
        }
    }

    /// Registers the workload's klasses in a fixed order, so every
    /// caller sees the same [`KlassId`]s.
    fn install_klasses(b: &mut GraphBuilder) -> (KlassId, KlassId, KlassId) {
        let payload = b.array_klass("long[]", FieldKind::Value(ValueType::Long));
        let event = b.klass(
            "Event",
            vec![
                FieldKind::Value(ValueType::Long),   // key
                FieldKind::Value(ValueType::Double), // value
                FieldKind::Ref,                      // payload
            ],
        );
        let batch = b.array_klass("Object[]", FieldKind::Ref);
        (payload, event, batch)
    }

    /// The shared klass registry, for executors that never build records
    /// (reducers decoding incoming streams).
    pub fn registry(&self) -> KlassRegistry {
        let mut b = GraphBuilder::new(1 << 12);
        Self::install_klasses(&mut b);
        let (_, reg) = b.finish();
        reg
    }

    /// Builds mapper `m`'s partition.
    ///
    /// # Panics
    /// Panics if `m >= self.mappers`.
    pub fn build_partition(&self, m: usize) -> AggPartition {
        assert!(m < self.mappers, "mapper {m} out of {}", self.mappers);
        let mut b = GraphBuilder::new(self.heap_capacity());
        let (payload_k, event_k, batch_klass) = Self::install_klasses(&mut b);
        let sampler = self.key_sampler();
        let mut rng = self.rng_for(m);
        let mut records = Vec::with_capacity(self.records_per_mapper);
        for _ in 0..self.records_per_mapper {
            let key = sampler.draw(&mut rng);
            let value = rng.gen_range_f64(0.0, 100.0);
            let payload: Vec<u64> = (0..PAYLOAD_WORDS).map(|_| rng.next_u64()).collect();
            let arr = b.value_array(payload_k, &payload).expect("capacity sized for records");
            let rec = b
                .object(
                    event_k,
                    &[
                        Init::Val(key),
                        Init::Val(f64::to_bits(value)),
                        Init::Ref(arr),
                    ],
                )
                .expect("capacity sized for records");
            records.push(rec);
        }
        let (heap, reg) = b.finish();
        AggPartition {
            heap,
            reg,
            records,
            batch_klass,
        }
    }

    /// The exact aggregation result: per key, `(count, sum-of-values)`,
    /// with values accumulated in `(mapper, generation)` order — the
    /// order a shuffle that preserves per-mapper record order folds in,
    /// so sums match bit for bit.
    pub fn expected_fold(&self) -> BTreeMap<u64, (u64, f64)> {
        let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        let sampler = self.key_sampler();
        for m in 0..self.mappers {
            let mut rng = self.rng_for(m);
            for _ in 0..self.records_per_mapper {
                let key = sampler.draw(&mut rng);
                let value = rng.gen_range_f64(0.0, 100.0);
                for _ in 0..PAYLOAD_WORDS {
                    rng.next_u64();
                }
                let e = fold.entry(key).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += value;
            }
        }
        fold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AggConfig {
        AggConfig {
            mappers: 3,
            records_per_mapper: 40,
            distinct_keys: 8,
            skew: KeySkew::Uniform,
            seed: 7,
        }
    }

    #[test]
    fn partitions_are_deterministic_and_disjointly_seeded() {
        let cfg = tiny();
        let a = cfg.build_partition(1);
        let b = cfg.build_partition(1);
        assert_eq!(a.records.len(), b.records.len());
        for (&x, &y) in a.records.iter().zip(&b.records) {
            assert_eq!(x, y);
            assert_eq!(a.heap.field(x, 0), b.heap.field(y, 0), "same keys");
        }
        let c = cfg.build_partition(2);
        let same_keys = a
            .records
            .iter()
            .zip(&c.records)
            .all(|(&x, &y)| a.heap.field(x, 0) == c.heap.field(y, 0));
        assert!(!same_keys, "different mappers draw different key streams");
    }

    #[test]
    fn registry_matches_partition_registry() {
        let cfg = tiny();
        let part = cfg.build_partition(0);
        let reg = cfg.registry();
        let kid = part.heap.klass_of(&part.reg, part.records[0]);
        assert_eq!(reg.get(kid).name(), part.reg.get(kid).name());
        assert_eq!(reg.get(part.batch_klass).name(), "Object[]");
    }

    #[test]
    fn zipf_skew_concentrates_keys_and_replays_in_expected_fold() {
        let mut cfg = tiny();
        cfg.records_per_mapper = 400;
        cfg.distinct_keys = 16;
        cfg.skew = KeySkew::Zipf(1.2);
        let expected = cfg.expected_fold();
        // Key 0 is the hottest by a wide margin.
        let hot = expected[&0].0;
        let total: u64 = expected.values().map(|v| v.0).sum();
        assert_eq!(total, (cfg.mappers * cfg.records_per_mapper) as u64);
        assert!(
            hot as f64 > total as f64 * 0.3,
            "zipf(1.2) head key holds a large share, got {hot}/{total}"
        );
        // The heap contents replay the same stream.
        let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        for m in 0..cfg.mappers {
            let p = cfg.build_partition(m);
            for &r in &p.records {
                let e = fold.entry(p.heap.field(r, 0)).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += f64::from_bits(p.heap.field(r, 1));
            }
        }
        assert_eq!(fold.len(), expected.len());
        for (k, v) in &expected {
            assert_eq!(fold[k].0, v.0, "count for key {k}");
            assert_eq!(fold[k].1.to_bits(), v.1.to_bits(), "sum for key {k}");
        }
    }

    #[test]
    fn skew_labels() {
        assert_eq!(KeySkew::Uniform.label(), "uniform");
        assert_eq!(KeySkew::Zipf(1.1).label(), "zipf(1.10)");
    }

    #[test]
    fn expected_fold_matches_heap_contents() {
        let cfg = tiny();
        let expected = cfg.expected_fold();
        let mut fold: BTreeMap<u64, (u64, f64)> = BTreeMap::new();
        for m in 0..cfg.mappers {
            let p = cfg.build_partition(m);
            for &r in &p.records {
                let key = p.heap.field(r, 0);
                let value = f64::from_bits(p.heap.field(r, 1));
                let e = fold.entry(key).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += value;
            }
        }
        let total: u64 = expected.values().map(|v| v.0).sum();
        assert_eq!(total, (cfg.mappers * cfg.records_per_mapper) as u64);
        assert_eq!(fold.len(), expected.len());
        for (k, v) in &expected {
            assert_eq!(fold[k].0, v.0, "count for key {k}");
            assert!((fold[k].1 - v.1).abs() < 1e-9, "sum for key {k}");
        }
    }
}
