//! Spark application workload models (paper §VI-A, Table III).
//!
//! The paper evaluates six HiBench applications on Apache Spark,
//! measuring the S/D operations inside shuffles, caching and spills. We
//! model each application's *S/D-visible* data: the batches of records a
//! Spark executor serializes per partition, with each application's
//! characteristic record shape:
//!
//! | App | Type (Table III) | Record shape |
//! |---|---|---|
//! | NWeight | Graph | adjacency records with edge-object arrays (reference-heavy) |
//! | SVM | Machine learning | dense `LabeledPoint` with a `double[]` feature vector |
//! | Bayes | Machine learning | sparse vectors (`int[]` indices + `double[]` values) |
//! | LR | Machine learning | dense `LabeledPoint` |
//! | Terasort | Sort | 10-byte-key/90-byte-value records |
//! | ALS | Machine learning | tiny `Rating {user, product, rating}` tuples |
//!
//! Each batch (one `Object[]` of records) is one S/D request — Spark
//! serializes per partition, which is where Cereal's operation-level
//! parallelism comes from. Input sizes follow Table III, scaled by
//! [`SparkScale`] (default 1/256 — ratios, not absolute times, are what
//! the figures report).

pub mod agg;
pub mod phases;

use sdheap::builder::Init;
use sdheap::rng::Rng;
use sdheap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};

/// The six evaluated applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SparkApp {
    /// Graph processing (156 MB input).
    NWeight,
    /// Support Vector Machine (1740 MB).
    Svm,
    /// Bayesian Classification (1126 MB).
    Bayes,
    /// Logistic Regression (1945 MB).
    Lr,
    /// Terasort (3072 MB).
    Terasort,
    /// Alternating Least Squares (1331 MB).
    Als,
}

/// Dataset size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparkScale {
    /// Table III sizes divided by 256 — the experiment default.
    Scaled,
    /// A few batches — for tests.
    Tiny,
}

/// A generated dataset: one heap holding `batches` independent S/D
/// request roots.
#[derive(Debug)]
pub struct SparkDataset {
    /// The heap holding every batch.
    pub heap: Heap,
    /// The shared klass registry.
    pub reg: KlassRegistry,
    /// One root per S/D request (a batch of records).
    pub batches: Vec<Addr>,
}

impl SparkApp {
    /// All applications in Table III order.
    pub fn all() -> [SparkApp; 6] {
        [
            SparkApp::NWeight,
            SparkApp::Svm,
            SparkApp::Bayes,
            SparkApp::Lr,
            SparkApp::Terasort,
            SparkApp::Als,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SparkApp::NWeight => "NWeight",
            SparkApp::Svm => "SVM",
            SparkApp::Bayes => "Bayes",
            SparkApp::Lr => "LR",
            SparkApp::Terasort => "Terasort",
            SparkApp::Als => "ALS",
        }
    }

    /// Workload type as in Table III.
    pub fn workload_type(&self) -> &'static str {
        match self {
            SparkApp::NWeight => "Graph",
            SparkApp::Terasort => "Sort",
            _ => "Machine learning",
        }
    }

    /// Table III input size in MB.
    pub fn input_mb(&self) -> u64 {
        match self {
            SparkApp::NWeight => 156,
            SparkApp::Svm => 1740,
            SparkApp::Bayes => 1126,
            SparkApp::Lr => 1945,
            SparkApp::Terasort => 3072,
            SparkApp::Als => 1331,
        }
    }

    /// Target S/D-visible bytes at a scale.
    pub fn target_bytes(&self, scale: SparkScale) -> u64 {
        match scale {
            SparkScale::Scaled => self.input_mb() * (1 << 20) / 256,
            SparkScale::Tiny => 64 << 10,
        }
    }

    /// Builds the dataset.
    pub fn build(&self, scale: SparkScale) -> SparkDataset {
        let target = self.target_bytes(scale);
        let mut b = GraphBuilder::new(target * 6 + (1 << 20));
        let mut rng = Rng::new(0x5EED ^ (*self as u64) << 8);
        let batch_klass = b.array_klass("Object[]", FieldKind::Ref);

        let mut batches = Vec::new();
        let mut bytes_so_far = 0u64;
        let records_per_batch = 256;
        while bytes_so_far < target {
            let mut records = Vec::with_capacity(records_per_batch);
            for _ in 0..records_per_batch {
                let (rec, sz) = self.build_record(&mut b, &mut rng);
                records.push(rec);
                bytes_so_far += sz;
            }
            let batch = b.ref_array(batch_klass, &records).expect("sized");
            bytes_so_far += (records.len() as u64 + 4) * 8;
            batches.push(batch);
            if bytes_so_far >= target {
                break;
            }
        }
        let (heap, reg) = b.finish();
        SparkDataset { heap, reg, batches }
    }

    /// Builds one record; returns (root, approx bytes).
    fn build_record(&self, b: &mut GraphBuilder, rng: &mut Rng) -> (Addr, u64) {
        match self {
            SparkApp::NWeight => {
                // Adjacency record: { id, edges: Edge[] }, Edge { dst, w }.
                let edge = b.klass(
                    "Edge",
                    vec![
                        FieldKind::Value(ValueType::Long),   // dst vertex
                        FieldKind::Value(ValueType::Double), // weight
                        FieldKind::Value(ValueType::Long),   // edge attrs
                    ],
                );
                let edges_arr = b.array_klass("Edge[]", FieldKind::Ref);
                let vertex = b.klass(
                    "Vertex",
                    vec![FieldKind::Value(ValueType::Long), FieldKind::Ref],
                );
                let n_edges = rng.gen_range_usize(8, 32);
                let mut edges = Vec::with_capacity(n_edges);
                for _ in 0..n_edges {
                    edges.push(
                        b.object(
                            edge,
                            &[
                                Init::Val(rng.gen_range_u64(0, 1_000_000)),
                                Init::Val(f64::to_bits(rng.gen_range_f64(0.0, 1.0))),
                                Init::Val(rng.next_u64()),
                            ],
                        )
                        .expect("sized"),
                    );
                }
                let arr = b.ref_array(edges_arr, &edges).expect("sized");
                let v = b
                    .object(vertex, &[Init::Val(rng.gen_range_u64(0, 1_000_000)), Init::Ref(arr)])
                    .expect("sized");
                (v, (n_edges as u64) * 48 + (n_edges as u64 + 4) * 8 + 40)
            }
            SparkApp::Svm | SparkApp::Lr => {
                let dims = if *self == SparkApp::Svm { 64 } else { 32 };
                let doubles = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
                let point = b.klass(
                    "LabeledPoint",
                    vec![FieldKind::Value(ValueType::Double), FieldKind::Ref],
                );
                let feats: Vec<u64> = (0..dims)
                    .map(|_| f64::to_bits(rng.gen_range_f64(-1.0, 1.0)))
                    .collect();
                let arr = b.value_array(doubles, &feats).expect("sized");
                let p = b
                    .object(
                        point,
                        &[
                            Init::Val(f64::to_bits(if rng.gen_bool(0.5) { 1.0 } else { -1.0 })),
                            Init::Ref(arr),
                        ],
                    )
                    .expect("sized");
                (p, dims as u64 * 8 + 32 + 40)
            }
            SparkApp::Bayes => {
                let ints = b.array_klass("int[]", FieldKind::Value(ValueType::Int));
                let doubles = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
                let sparse = b.klass(
                    "SparseVector",
                    vec![
                        FieldKind::Value(ValueType::Double), // label
                        FieldKind::Ref,                      // indices
                        FieldKind::Ref,                      // values
                    ],
                );
                let k = rng.gen_range_usize(8, 24);
                let idx: Vec<u64> = (0..k).map(|_| rng.gen_range_u64(0, 10_000)).collect();
                let vals: Vec<u64> =
                    (0..k).map(|_| f64::to_bits(rng.gen_range_f64(0.0, 5.0))).collect();
                let ia = b.value_array(ints, &idx).expect("sized");
                let va = b.value_array(doubles, &vals).expect("sized");
                let s = b
                    .object(
                        sparse,
                        &[
                            Init::Val(f64::to_bits(rng.gen_range_f64(0.0, 20.0))),
                            Init::Ref(ia),
                            Init::Ref(va),
                        ],
                    )
                    .expect("sized");
                (s, k as u64 * 16 + 64 + 48)
            }
            SparkApp::Terasort => {
                // 10 B keys / 90 B values, packed 8 bytes per heap word
                // (as HotSpot packs byte[] backing stores): 2 + 12 words.
                let words = b.array_klass("long[]", FieldKind::Value(ValueType::Long));
                let rec = b.klass("Record", vec![FieldKind::Ref, FieldKind::Ref]);
                let key: Vec<u64> = (0..2).map(|_| rng.next_u64()).collect();
                let val: Vec<u64> = (0..12).map(|_| rng.next_u64()).collect();
                let ka = b.value_array(words, &key).expect("sized");
                let va = b.value_array(words, &val).expect("sized");
                let r = b
                    .object(rec, &[Init::Ref(ka), Init::Ref(va)])
                    .expect("sized");
                (r, (2 + 12) * 8 + 64 + 40)
            }
            SparkApp::Als => {
                // ALS shuffles user/item factor vectors between the
                // alternating solves (rank-16 latent factors), not raw
                // ratings.
                let doubles = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
                let fv = b.klass(
                    "FactorVector",
                    vec![FieldKind::Value(ValueType::Int), FieldKind::Ref],
                );
                let rank = 16;
                let factors: Vec<u64> = (0..rank)
                    .map(|_| f64::to_bits(rng.gen_range_f64(-1.0, 1.0)))
                    .collect();
                let arr = b.value_array(doubles, &factors).expect("sized");
                let r = b
                    .object(fv, &[Init::Val(rng.gen_range_u64(0, 100_000)), Init::Ref(arr)])
                    .expect("sized");
                (r, rank as u64 * 8 + 32 + 40)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdheap::GraphStats;

    #[test]
    fn all_apps_build_tiny_datasets() {
        for app in SparkApp::all() {
            let ds = app.build(SparkScale::Tiny);
            assert!(!ds.batches.is_empty(), "{}", app.name());
            let s = GraphStats::measure(&ds.heap, &ds.reg, ds.batches[0]);
            assert!(s.objects > 100, "{}: {} objects", app.name(), s.objects);
        }
    }

    #[test]
    fn table3_sizes() {
        assert_eq!(SparkApp::NWeight.input_mb(), 156);
        assert_eq!(SparkApp::Svm.input_mb(), 1740);
        assert_eq!(SparkApp::Bayes.input_mb(), 1126);
        assert_eq!(SparkApp::Lr.input_mb(), 1945);
        assert_eq!(SparkApp::Terasort.input_mb(), 3072);
        assert_eq!(SparkApp::Als.input_mb(), 1331);
    }

    #[test]
    fn nweight_is_reference_heavy_svm_is_not() {
        let nw = SparkApp::NWeight.build(SparkScale::Tiny);
        let svm = SparkApp::Svm.build(SparkScale::Tiny);
        let s_nw = GraphStats::measure(&nw.heap, &nw.reg, nw.batches[0]);
        let s_svm = GraphStats::measure(&svm.heap, &svm.reg, svm.batches[0]);
        let refs_per_byte_nw = s_nw.live_refs as f64 / s_nw.total_bytes as f64;
        let refs_per_byte_svm = s_svm.live_refs as f64 / s_svm.total_bytes as f64;
        assert!(
            refs_per_byte_nw > refs_per_byte_svm * 2.0,
            "NWeight {refs_per_byte_nw} vs SVM {refs_per_byte_svm}"
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = SparkApp::Als.build(SparkScale::Tiny);
        let b = SparkApp::Als.build(SparkScale::Tiny);
        assert_eq!(a.batches.len(), b.batches.len());
        assert!(sdheap::isomorphic_with(
            &a.heap,
            &a.reg,
            a.batches[0],
            &b.heap,
            b.batches[0],
            sdheap::IsoOptions {
                check_identity_hash: false
            }
        ));
    }

    #[test]
    fn scaled_dataset_hits_target_bytes() {
        let ds = SparkApp::NWeight.build(SparkScale::Scaled);
        let target = SparkApp::NWeight.target_bytes(SparkScale::Scaled);
        let total: u64 = ds
            .batches
            .iter()
            .map(|&r| GraphStats::measure(&ds.heap, &ds.reg, r).total_bytes)
            .sum();
        assert!(
            total > target / 2 && total < target * 3,
            "target {target}, built {total}"
        );
    }
}
