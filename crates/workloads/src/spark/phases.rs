//! Application phase model calibrated to the paper's Fig. 2.
//!
//! Figures 13 and 14 need end-to-end application times, but only the S/D
//! phase is the paper's contribution (and the only phase we simulate
//! mechanistically). Computation, GC and I/O are taken as per-application
//! constants *derived from Fig. 2's runtime breakdown under Java S/D* —
//! the same role the measured Spark runs play in the paper:
//!
//! | App | compute | GC | I/O | S/D (Java) |
//! |---|---|---|---|---|
//! | NWeight | 0.32 | 0.10 | 0.18 | 0.40 |
//! | SVM | 0.050 | 0.020 | 0.021 | 0.909 |
//! | Bayes | 0.45 | 0.10 | 0.15 | 0.30 |
//! | LR | 0.42 | 0.08 | 0.15 | 0.35 |
//! | Terasort | 0.42 | 0.10 | 0.20 | 0.28 |
//! | ALS | 0.55 | 0.12 | 0.15 | 0.18 |
//!
//! The S/D column averages 0.40 (paper: 39.5%) with SVM at 90.9% exactly
//! as reported. When a different serializer is swapped in, compute and GC
//! stay fixed, I/O scales with the serialized-byte ratio (Spark ships the
//! serialized stream over disk/network), and S/D is whatever the
//! simulation measures.

use super::SparkApp;

/// Fig. 2-calibrated fractions of total runtime under Java S/D.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseFractions {
    /// User computation.
    pub compute: f64,
    /// Garbage collection.
    pub gc: f64,
    /// Disk/network I/O.
    pub io: f64,
    /// Serialization + deserialization.
    pub sd: f64,
}

impl PhaseFractions {
    /// Sum of all fractions (≈ 1.0).
    pub fn total(&self) -> f64 {
        self.compute + self.gc + self.io + self.sd
    }
}

/// The calibration table above.
pub fn java_fractions(app: SparkApp) -> PhaseFractions {
    match app {
        SparkApp::NWeight => PhaseFractions { compute: 0.32, gc: 0.10, io: 0.18, sd: 0.40 },
        SparkApp::Svm => PhaseFractions { compute: 0.050, gc: 0.020, io: 0.021, sd: 0.909 },
        SparkApp::Bayes => PhaseFractions { compute: 0.45, gc: 0.10, io: 0.15, sd: 0.30 },
        SparkApp::Lr => PhaseFractions { compute: 0.42, gc: 0.08, io: 0.15, sd: 0.35 },
        SparkApp::Terasort => PhaseFractions { compute: 0.42, gc: 0.10, io: 0.20, sd: 0.28 },
        SparkApp::Als => PhaseFractions { compute: 0.55, gc: 0.12, io: 0.15, sd: 0.18 },
    }
}

/// One application run under a particular serializer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AppRun {
    /// Computation time (ns).
    pub compute_ns: f64,
    /// GC time (ns).
    pub gc_ns: f64,
    /// I/O time (ns).
    pub io_ns: f64,
    /// S/D time (ns).
    pub sd_ns: f64,
}

impl AppRun {
    /// Total runtime.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.gc_ns + self.io_ns + self.sd_ns
    }

    /// Fraction spent in S/D.
    pub fn sd_fraction(&self) -> f64 {
        self.sd_ns / self.total_ns()
    }
}

/// Builds the reference run: given the *measured* Java S/D time for an
/// app, derives the other phases from the Fig. 2 calibration.
pub fn java_run(app: SparkApp, sd_java_ns: f64, java_bytes: u64) -> AppRun {
    let f = java_fractions(app);
    let per_frac = sd_java_ns / f.sd;
    let _ = java_bytes;
    AppRun {
        compute_ns: per_frac * f.compute,
        gc_ns: per_frac * f.gc,
        io_ns: per_frac * f.io,
        sd_ns: sd_java_ns,
    }
}

/// Fraction of I/O that is *shuffle/spill* traffic and therefore scales
/// with the serialized stream size; the rest is input reading (HDFS) and
/// is serializer-independent.
pub const SHUFFLE_IO_FRACTION: f64 = 0.3;

/// A run with a different serializer swapped in: compute/GC unchanged,
/// the shuffle share of I/O scaled by the serialized-size ratio, S/D as
/// measured.
pub fn swapped_run(java: &AppRun, sd_ns: f64, bytes: u64, java_bytes: u64) -> AppRun {
    let size_ratio = if java_bytes == 0 {
        1.0
    } else {
        bytes as f64 / java_bytes as f64
    };
    let io_scale = (1.0 - SHUFFLE_IO_FRACTION) + SHUFFLE_IO_FRACTION * size_ratio;
    AppRun {
        compute_ns: java.compute_ns,
        gc_ns: java.gc_ns,
        io_ns: java.io_ns * io_scale,
        sd_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for app in SparkApp::all() {
            let f = java_fractions(app);
            assert!(
                (f.total() - 1.0).abs() < 0.01,
                "{}: {}",
                app.name(),
                f.total()
            );
        }
    }

    #[test]
    fn average_sd_fraction_matches_fig2() {
        let avg: f64 = SparkApp::all()
            .iter()
            .map(|&a| java_fractions(a).sd)
            .sum::<f64>()
            / 6.0;
        assert!((avg - 0.395).abs() < 0.05, "paper: 39.5 %, got {avg}");
        assert!((java_fractions(SparkApp::Svm).sd - 0.909).abs() < 1e-9);
    }

    #[test]
    fn java_run_reconstructs_fractions() {
        let run = java_run(SparkApp::Bayes, 3.0e9, 1 << 20);
        assert!((run.sd_fraction() - 0.30).abs() < 1e-9);
        assert!((run.total_ns() - 10.0e9).abs() < 1.0);
    }

    #[test]
    fn swapping_a_faster_serializer_speeds_up_the_app() {
        let java = java_run(SparkApp::Lr, 3.5e9, 100 << 20);
        // 5× faster S/D, 20 % larger stream.
        let kryo = swapped_run(&java, 0.7e9, 120 << 20, 100 << 20);
        let speedup = java.total_ns() / kryo.total_ns();
        assert!(speedup > 1.3 && speedup < 1.7, "got {speedup}");
        assert!(kryo.io_ns > java.io_ns, "larger stream costs more I/O");
        // Only the shuffle share scales: +20% bytes → +6% I/O.
        assert!((kryo.io_ns / java.io_ns - 1.06).abs() < 0.001);
        assert_eq!(kryo.compute_ns, java.compute_ns);
    }

    #[test]
    fn svm_is_sd_dominated() {
        let java = java_run(SparkApp::Svm, 9.09e9, 1 << 20);
        // Infinite-speed S/D would give ≈ 11× application speedup.
        let ideal = swapped_run(&java, 0.0, 1 << 20, 1 << 20);
        assert!(java.total_ns() / ideal.total_ns() > 8.0);
    }
}
