//! A Zipf(θ) sampler over the in-repo PRNG.
//!
//! Real aggregation keys are rarely uniform — a few hot keys dominate
//! (power-law web data, heavy-hitter joins), which is exactly what makes
//! one shuffle reducer hot and one cached block worth keeping. This
//! sampler draws ranks `0..n` with `P(rank = i) ∝ (i + 1)^-θ` by
//! inverting a precomputed CDF with binary search: `O(n)` setup, one
//! PRNG draw and `O(log n)` per sample, no external dependencies.
//!
//! θ = 0 degenerates to uniform; θ ≈ 1 is the classic Zipf web-data
//! skew; larger θ concentrates further.

use sdheap::rng::Rng;

/// A precomputed Zipf distribution over `n` ranks.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over ranks `0..n` with exponent `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty rank space");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for i in 0..n {
            total += ((i + 1) as f64).powf(-theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the rank space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `[0, n)`, consuming exactly one PRNG word —
    /// callers that replay generation streams (e.g.
    /// [`crate::AggConfig::expected_fold`]) rely on the fixed draw count.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        // First rank whose cumulative probability covers `u`.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// A self-contained seeded Zipf stream: distribution plus PRNG in one
/// value, one draw per [`SkewSampler::next`].
///
/// Everything that picks "which tenant / which key / which block" from a
/// skewed population — the store's cached-RDD access patterns, the
/// cluster scheduler's multi-tenant job generator — needs the same
/// shape: a `Zipf` table and a dedicated `Rng` stream advancing in
/// lockstep. Bundling them keeps the draw count explicit (exactly one
/// PRNG word per sample, so interleaved streams never perturb each
/// other) and makes the seed the complete description of the sequence.
#[derive(Clone, Debug)]
pub struct SkewSampler {
    zipf: Zipf,
    rng: Rng,
}

impl SkewSampler {
    /// A sampler over ranks `0..n` with exponent `theta`, drawing from a
    /// fresh PRNG stream seeded with `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        SkewSampler {
            zipf: Zipf::new(n, theta),
            rng: Rng::new(seed),
        }
    }

    /// Wraps an already-built distribution (callers that share one CDF
    /// across many seeded streams avoid the `O(n)` setup per stream).
    pub fn from_zipf(zipf: Zipf, seed: u64) -> Self {
        SkewSampler { zipf, rng: Rng::new(seed) }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.zipf.len()
    }

    /// Whether the rank space is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.zipf.is_empty()
    }

    /// Draws the next rank in `[0, n)`, consuming exactly one PRNG word.
    pub fn next(&mut self) -> u64 {
        self.zipf.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range_and_are_deterministic() {
        let z = Zipf::new(64, 1.1);
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 64);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(7);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.1).abs() < 0.01, "uniform bucket drifted: {f}");
        }
    }

    #[test]
    fn higher_theta_concentrates_on_the_head() {
        let mut rng = Rng::new(9);
        let mild = Zipf::new(100, 0.5);
        let hot = Zipf::new(100, 1.5);
        let head_mass = |z: &Zipf, rng: &mut Rng| {
            let mut head = 0u64;
            for _ in 0..50_000 {
                if z.sample(rng) == 0 {
                    head += 1;
                }
            }
            head as f64 / 50_000.0
        };
        let m = head_mass(&mild, &mut rng);
        let h = head_mass(&hot, &mut rng);
        assert!(h > m * 2.0, "theta 1.5 head {h} vs theta 0.5 head {m}");
        // Analytically, P(rank 0) = 1 / Σ_{i=1..100} i^-1.5 ≈ 0.39.
        assert!((h - 0.39).abs() < 0.03, "theta 1.5 head mass drifted: {h}");
    }

    #[test]
    fn skew_sampler_matches_manual_zipf_plus_rng_stream() {
        // The sampler is nothing but Zipf::new + Rng::new advancing in
        // lockstep — adopters replacing that manual pairing (the store's
        // access patterns) must see the identical sequence.
        let mut s = SkewSampler::new(64, 1.1, 42);
        let z = Zipf::new(64, 1.1);
        let mut rng = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(s.next(), z.sample(&mut rng));
        }
    }

    #[test]
    fn skew_sampler_golden_sequence() {
        // Pinned first draws for a fixed (n, theta, seed): any drift in
        // the PRNG, the CDF construction, or the inversion changes every
        // seeded workload downstream.
        let mut s = SkewSampler::new(16, 1.1, 7);
        let golden: Vec<u64> = (0..12).map(|_| s.next()).collect();
        assert_eq!(golden, vec![0, 0, 5, 1, 13, 1, 5, 0, 14, 0, 0, 0]);
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Rng::new(3);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
