//! Format anatomy: serialize a tiny graph and dump every structure of
//! the Cereal format — value array, packed reference array with its end
//! map, packed layout bitmaps — mirroring the paper's Fig. 4 and Fig. 5.
//!
//! ```sh
//! cargo run --release --example format_inspect
//! ```

use cereal_repro::accel::{ClassTables, Accelerator};
use cereal_repro::format::pack::Unpacker;
use cereal_repro::format::stream::decode_ref;
use cereal_repro::heap::builder::Init;
use cereal_repro::heap::{Addr, FieldKind, GraphBuilder, Heap, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 4 example: objA → objB, objC; objB → objD.
    let mut b = GraphBuilder::new(1 << 16);
    let k = b.klass(
        "Obj",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
    );
    let obj_d = b.object(k, &[Init::Val(0xD), Init::Null, Init::Null])?;
    let obj_c = b.object(k, &[Init::Val(0xC), Init::Null, Init::Null])?;
    let obj_b = b.object(k, &[Init::Val(0xB), Init::Ref(obj_d), Init::Null])?;
    let obj_a = b.object(k, &[Init::Val(0xA), Init::Ref(obj_b), Init::Ref(obj_c)])?;
    let (mut heap, reg) = b.finish();

    let mut accel = Accelerator::paper();
    accel.register_all(&reg)?;
    let ser = accel.serialize(&mut heap, &reg, obj_a)?;
    let stream = sdformat::CerealStream::from_bytes(&ser.bytes)?;

    println!("== Cereal serialized format (paper Fig. 4b / Fig. 5b) ==\n");
    println!(
        "object graph size: {} bytes ({} objects)",
        stream.total_object_bytes, stream.object_count
    );

    println!("\nvalue array ({} bytes, 8 B words):", stream.value_array.len());
    for (i, w) in stream.value_words().iter().enumerate() {
        // Each object contributes 3 value words here (mark word, class
        // ID, one payload word) — references live in the reference
        // array, and the runtime-private extension word never travels.
        let role = match i % 3 {
            0 => "mark word",
            1 => "class ID",
            _ => "value",
        };
        println!("  word {i:2}: {w:#018x}  {role}");
    }

    println!(
        "\npacked reference array ({} payload bytes + {} end-map bytes, {} items):",
        stream.refs.bytes.len(),
        stream.refs.end_map.as_bytes().len(),
        stream.refs.count
    );
    print!("  payload:");
    for byte in &stream.refs.bytes {
        print!(" {byte:08b}");
    }
    println!();
    print!("  end map:");
    for byte in stream.refs.end_map.as_bytes() {
        print!(" {byte:08b}");
    }
    println!();
    let mut u = Unpacker::new(&stream.refs);
    let mut i = 0;
    while let Some(item) = u.next_value() {
        match decode_ref(item) {
            Some(rel) => println!("  ref {i}: relative address {rel}"),
            None => println!("  ref {i}: null"),
        }
        i += 1;
    }

    println!(
        "\npacked layout bitmaps ({} payload bytes, 1 bit per 8 B word, 1 = reference):",
        stream.bitmaps.bytes.len()
    );
    for (obj, bits) in stream.bitmaps.to_items().iter().enumerate() {
        let s: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!(
            "  obj {obj}: {s}  (object size {} bytes)",
            bits.len() * 8
        );
    }

    // And show the reconstruction (Fig. 4c).
    let mut dst = Heap::with_base(Addr(0x8000), 1 << 16);
    let mut tables = ClassTables::new(16);
    tables.register_all(&reg)?;
    let (root, _) = cereal::functional::decode(&stream, &tables, &mut dst, false)?;
    println!("\nreconstructed at base {} (paper uses 8000):", dst.base());
    for addr in [root, dst.ref_field(root, 1).unwrap(), dst.ref_field(root, 2).unwrap()] {
        println!(
            "  {}: payload {:#x}, refs {:?}",
            addr,
            dst.field(addr, 0),
            (dst.ref_field(addr, 1), dst.ref_field(addr, 2)),
        );
    }
    Ok(())
}
