//! Reference-heavy graph analytics: where Cereal's object packing shines.
//!
//! Builds the paper's Graph microbenchmark (Fig. 9c), serializes it with
//! every serializer, and shows how the packed reference array keeps the
//! stream compact while the accelerator's block-parallel deserialization
//! keeps reconstruction bandwidth-bound.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use cereal_repro::accel::Accelerator;
use cereal_repro::baselines::{JavaSd, Kryo, NullSink, Serializer, Skyway};
use cereal_repro::bench_workloads::{MicroBench, Scale};
use cereal_repro::heap::{Addr, GraphStats, Heap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut heap, reg, root) = MicroBench::GraphDense.build(Scale::Tiny);
    let stats = GraphStats::measure(&heap, &reg, root);
    println!(
        "dense random graph: {} objects, {} live references, {} KB in heap\n",
        stats.objects,
        stats.live_refs,
        stats.total_bytes >> 10
    );

    println!("{:<10} {:>10} {:>14}", "serializer", "bytes", "bytes/reference");
    for ser in [&JavaSd::new() as &dyn Serializer, &Kryo::new(), &Skyway::new()] {
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink)?;
        println!(
            "{:<10} {:>10} {:>14.2}",
            ser.name(),
            bytes.len(),
            bytes.len() as f64 / stats.live_refs as f64
        );
    }

    let mut accel = Accelerator::paper();
    accel.register_all(&reg)?;
    let ser = accel.serialize(&mut heap, &reg, root)?;
    println!(
        "{:<10} {:>10} {:>14.2}",
        "Cereal",
        ser.bytes.len(),
        ser.bytes.len() as f64 / stats.live_refs as f64
    );

    // Decompose the Cereal stream: the packed reference array is the
    // interesting part on this workload.
    let stream = sdformat::CerealStream::from_bytes(&ser.bytes)?;
    println!(
        "\nCereal stream sections: value array {} B, packed references {} B \
         ({} refs, {:.2} B/ref), packed bitmaps {} B",
        stream.value_array.len(),
        stream.refs.total_bytes(),
        stream.refs.count,
        stream.refs.total_bytes() as f64 / stream.refs.count as f64,
        stream.bitmaps.total_bytes(),
    );
    println!(
        "unpacked baseline format (§IV-A) would be {} B → packing saves {:.1}%",
        stream.baseline_wire_bytes(),
        (1.0 - stream.wire_bytes() as f64 / stream.baseline_wire_bytes() as f64) * 100.0,
    );

    // Round-trip and verify.
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), heap.capacity_bytes());
    let de = accel.deserialize(&ser.bytes, &mut dst)?;
    assert!(sdheap::isomorphic(&heap, &reg, root, &dst, de.root));
    println!("\nround trip verified: every edge, shared node and identity hash intact");
    Ok(())
}
