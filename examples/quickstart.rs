//! Quickstart: build an object graph, serialize it with the Cereal
//! accelerator, reconstruct it, and compare against the software
//! baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cereal_repro::accel::Accelerator;
use cereal_repro::baselines::{JavaSd, Kryo, NullSink, Serializer, Skyway};
use cereal_repro::heap::builder::Init;
use cereal_repro::heap::{isomorphic, Addr, FieldKind, GraphBuilder, Heap, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small object graph on the HotSpot-like heap: a ring of
    //    sensor records sharing one calibration table.
    let mut b = GraphBuilder::new(1 << 20);
    let table_k = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let record_k = b.klass(
        "SensorRecord",
        vec![
            FieldKind::Value(ValueType::Long), // timestamp
            FieldKind::Value(ValueType::Double), // reading
            FieldKind::Ref, // calibration (shared)
            FieldKind::Ref, // next record (ring)
        ],
    );
    let calibration = b.value_array(
        table_k,
        &[1.0f64, 0.5, -0.25].map(f64::to_bits),
    )?;
    let mut records = Vec::new();
    for i in 0..5u64 {
        let r = b.object(
            record_k,
            &[
                Init::Val(1_700_000_000 + i),
                Init::Val(f64::to_bits(20.0 + i as f64 * 0.1)),
                Init::Ref(calibration),
                Init::Null,
            ],
        )?;
        records.push(r);
    }
    for i in 0..records.len() {
        b.link(records[i], 3, records[(i + 1) % records.len()]); // close the ring
    }
    let root = records[0];
    let (mut heap, reg) = b.finish();

    // 2. Serialize with the Cereal accelerator (Initialize + RegisterClass
    //    + WriteObject from the paper's §V-A interface).
    let mut accel = Accelerator::paper();
    accel.register_all(&reg)?;
    let ser = accel.serialize(&mut heap, &reg, root)?;
    println!(
        "Cereal serialized {} objects into {} bytes in {:.0} ns on SU{}",
        sdheap::reachable(&heap, &reg, root, sdheap::Reachable::BreadthFirst).len(),
        ser.bytes.len(),
        ser.run.busy_ns(),
        ser.unit,
    );

    // 3. Reconstruct into a fresh heap and verify isomorphism — sharing,
    //    the cycle, and even identity hashes survive.
    let mut dst = Heap::with_base(Addr(0x2_0000_0000), 1 << 20);
    let de = accel.deserialize(&ser.bytes, &mut dst)?;
    assert!(isomorphic(&heap, &reg, root, &dst, de.root));
    println!(
        "reconstructed at {} in {:.0} ns on DU{}; graphs are isomorphic",
        de.root, de.run.busy_ns(), de.unit
    );

    // 4. Compare stream sizes with the software baselines.
    for ser in [&JavaSd::new() as &dyn Serializer, &Kryo::new(), &Skyway::new()] {
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink)?;
        println!("{:>8}: {} bytes", ser.name(), bytes.len());
    }
    println!("{:>8}: {} bytes", "Cereal", ser.bytes.len());
    Ok(())
}
