//! A Spark-style shuffle: many record batches serialized per partition,
//! compared across Java S/D, Kryo, and the Cereal accelerator — the
//! scenario the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example spark_shuffle
//! ```

use cereal_repro::accel::CerealConfig;
use cereal_repro::baselines::{JavaSd, Kryo, Serializer};
use cereal_repro::bench_workloads::{SparkApp, SparkScale};
use cereal_repro::heap::{Addr, Heap};
use sim::Cpu;

fn main() {
    let app = SparkApp::Svm;
    println!(
        "shuffling {} ({}, Table III input {} MB, scaled)",
        app.name(),
        app.workload_type(),
        app.input_mb()
    );
    let mut ds = app.build(SparkScale::Tiny);
    let batches = ds.batches.clone();
    println!("{} partitions of 256 records each\n", batches.len());

    // Software baselines: a single executor core serializes each
    // partition in turn.
    for ser in [&JavaSd::new() as &dyn Serializer, &Kryo::new()] {
        let mut cpu = Cpu::host();
        let mut total_bytes = 0u64;
        for &root in &batches {
            let bytes = ser
                .serialize(&mut ds.heap, &ds.reg, root, &mut cpu)
                .expect("serialize");
            total_bytes += bytes.len() as u64;
        }
        let r = cpu.report();
        println!(
            "{:>8}: {:>10.1} us, {:>8} KB shuffled, IPC {:.2}, {:.1}% of DRAM bandwidth",
            ser.name(),
            r.ns / 1e3,
            total_bytes >> 10,
            r.ipc,
            r.bandwidth_util * 100.0,
        );
    }

    // Cereal: the same partitions fan out across 8 serialization units.
    let mut accel = cereal::Accelerator::new(CerealConfig::paper());
    accel.register_all(&ds.reg).expect("register");
    ds.heap.gc_clear_serialization_metadata(&ds.reg);
    let mut total_bytes = 0u64;
    let mut streams = Vec::new();
    for &root in &batches {
        let s = accel.serialize(&mut ds.heap, &ds.reg, root).expect("serialize");
        total_bytes += s.bytes.len() as u64;
        streams.push(s.bytes);
    }
    let rep = accel.report();
    println!(
        "{:>8}: {:>10.1} us, {:>8} KB shuffled, {} units, {:.1}% of DRAM bandwidth",
        "Cereal",
        rep.ser_makespan_ns / 1e3,
        total_bytes >> 10,
        rep.ser_requests.min(8),
        rep.bandwidth_util * 100.0,
    );

    // Receive side: deserialize every partition and spot-check one.
    accel.reset_meters();
    let mut last_root = Addr::NULL;
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), ds.heap.capacity_bytes());
    for s in &streams {
        last_root = accel.deserialize(s, &mut dst).expect("deserialize").root;
    }
    let rep = accel.report();
    println!(
        "\nreceive side: {:.1} us for {} partitions ({:.1}% bandwidth)",
        rep.de_makespan_ns / 1e3,
        rep.de_requests,
        rep.bandwidth_util * 100.0,
    );
    assert!(sdheap::isomorphic(
        &ds.heap,
        &ds.reg,
        *batches.last().expect("non-empty"),
        &dst,
        last_root
    ));
    println!("last partition verified isomorphic after the round trip");
}
