#!/usr/bin/env bash
# Tier-1 verification plus the perf smoke run. Fully offline: the
# workspace has no external dependencies, so this works with no
# crates.io access (pass CARGO_FLAGS=--offline to enforce it).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== tier-1: build =="
cargo build --release $CARGO_FLAGS

echo "== tier-1: tests (root package) =="
cargo test -q $CARGO_FLAGS

echo "== full workspace tests =="
cargo test -q --workspace $CARGO_FLAGS

echo "== perf smoke =="
cargo run --release -p cereal-bench --bin perf $CARGO_FLAGS -- --smoke

echo "verify: OK"
