#!/usr/bin/env bash
# Tier-1 verification plus the perf smoke run. Fully offline: the
# workspace has no external dependencies, so this works with no
# crates.io access (pass CARGO_FLAGS=--offline to enforce it).
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=${CARGO_FLAGS:-}

echo "== tier-1: build =="
cargo build --release $CARGO_FLAGS

echo "== tier-1: tests (root package) =="
cargo test -q $CARGO_FLAGS

echo "== full workspace tests =="
cargo test -q --workspace $CARGO_FLAGS

echo "== perf smoke =="
cargo run --release -p cereal-bench --bin perf $CARGO_FLAGS -- --smoke

echo "== zero-copy archive round trip =="
# The archive backend's format pins (golden bytes), adversarial-input
# properties, and the cross-serializer round trips that include it.
cargo test -q -p serializers $CARGO_FLAGS --test golden_archive
cargo test -q -p serializers $CARGO_FLAGS --test prop_archive
cargo test -q $CARGO_FLAGS --test cross_serializer

echo "== compiled-plan determinism (shuffle smoke, interpretive vs compiled) =="
# Compiled plans may only change wall-clock: the serialized streams and
# the narrated op sequences are contractually identical, so every
# sim-derived report byte must match between the two modes.
CEREAL_COMPILED_PLANS=0 cargo run --release -p cereal-bench --bin shuffle $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/shuffle_interp.json
CEREAL_COMPILED_PLANS=1 cargo run --release -p cereal-bench --bin shuffle $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/shuffle_compiled.json
cmp target/shuffle_interp.json target/shuffle_compiled.json \
  || { echo "shuffle report differs between interpretive and compiled plans"; exit 1; }

echo "== shuffle smoke + thread-count determinism =="
cargo run --release -p cereal-bench --bin shuffle $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/shuffle_jobs1.json
cargo run --release -p cereal-bench --bin shuffle $CARGO_FLAGS -- \
  --smoke --jobs 4 --out target/shuffle_jobs4.json
cmp target/shuffle_jobs1.json target/shuffle_jobs4.json \
  || { echo "shuffle report differs between 1 and 4 jobs"; exit 1; }

echo "== store smoke + thread-count determinism =="
cargo run --release -p cereal-bench --bin store $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/store_jobs1.json
cargo run --release -p cereal-bench --bin store $CARGO_FLAGS -- \
  --smoke --jobs 4 --out target/store_jobs4.json
cmp target/store_jobs1.json target/store_jobs4.json \
  || { echo "store report differs between 1 and 4 jobs"; exit 1; }

echo "== faults smoke + thread-count determinism =="
# The harness itself asserts the rate-0.0 sweep point reproduces the
# fault-free baseline numbers exactly.
cargo run --release -p cereal-bench --bin faults $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/faults_jobs1.json
cargo run --release -p cereal-bench --bin faults $CARGO_FLAGS -- \
  --smoke --jobs 4 --out target/faults_jobs4.json
cmp target/faults_jobs1.json target/faults_jobs4.json \
  || { echo "faults report differs between 1 and 4 jobs"; exit 1; }

echo "== trace smoke + thread-count determinism =="
# The binary itself exits non-zero if any exported counter disagrees
# with its report-side twin.
cargo run --release -p cereal-bench --bin trace $CARGO_FLAGS -- \
  --jobs 1 --out target/trace_report_jobs1.json --trace-out target/trace_jobs1.json
cargo run --release -p cereal-bench --bin trace $CARGO_FLAGS -- \
  --jobs 4 --out target/trace_report_jobs4.json --trace-out target/trace_jobs4.json
cmp target/trace_report_jobs1.json target/trace_report_jobs4.json \
  || { echo "trace report differs between 1 and 4 jobs"; exit 1; }
cmp target/trace_jobs1.json target/trace_jobs4.json \
  || { echo "chrome trace differs between 1 and 4 jobs"; exit 1; }
# The causal layer: the exported trace must carry flow (s/f) edges for
# the shuffle fetch chain — their exact rendering is pinned by the
# telemetry golden test, their presence end-to-end here.
grep -q '"ph":"s"' target/trace_jobs1.json \
  && grep -q '"cat":"flow.fetch"' target/trace_jobs1.json \
  || { echo "chrome trace lost its causal flow events"; exit 1; }

echo "== cluster + cluster-faults smoke, thread-count determinism =="
# One invocation covers both the healthy sweeps and the fault domain:
# the smoke config's fault cells (crash, heartbeat, blacklist,
# DU-failure, admission) all run on the 512-executor base cluster. The
# binary itself asserts speculation preserves every job's fold and
# never worsens the makespan, that every fault cell accounts for every
# arrival (completed + shed + failed) with crash/detection/restart
# parity, that the crash-0 cell is byte-identical to a run with no
# fault domain, and it reconciles the exported telemetry counters
# (including every cluster.* fault counter, on a healthy cell and on a
# fault-storm cell) against its report — exiting non-zero on any
# mismatch. The same traced cells feed the causal critical-path blame
# analysis, whose conservation law (the nine categories sum exactly to
# each job's latency, critical path bounded by the makespan) is also
# enforced with a non-zero exit. The cmp then proves the whole report
# — fault ledger, blame and timeline blocks included — is
# byte-identical for 1 vs 4 worker threads.
cargo run --release -p cereal-bench --bin cluster $CARGO_FLAGS -- \
  --smoke --jobs 1 --out target/cluster_jobs1.json
cargo run --release -p cereal-bench --bin cluster $CARGO_FLAGS -- \
  --smoke --jobs 4 --out target/cluster_jobs4.json
cmp target/cluster_jobs1.json target/cluster_jobs4.json \
  || { echo "cluster report differs between 1 and 4 jobs"; exit 1; }

echo "verify: OK"
