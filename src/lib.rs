//! `cereal-repro` — umbrella crate of the Cereal (ISCA 2020)
//! reproduction.
//!
//! Re-exports the whole stack so examples and downstream users need a
//! single dependency:
//!
//! * [`heap`] (`sdheap`) — the HotSpot-like managed heap;
//! * [`format`] (`sdformat`) — the Cereal serialization format;
//! * [`baselines`] (`serializers`) — Java S/D, Kryo and Skyway;
//! * [`arch`] (`sim`) — DRAM/cache/CPU/MAI/TLB models;
//! * [`accel`] (`cereal`) — the Cereal accelerator itself;
//! * [`bench_workloads`] (`workloads`) — microbenchmarks, JSBS, Spark.
//!
//! See `examples/quickstart.rs` for the five-minute tour, DESIGN.md for
//! the system inventory, and EXPERIMENTS.md for paper-vs-measured
//! results.

pub use cereal as accel;
pub use sdformat as format;
pub use sdheap as heap;
pub use serializers as baselines;
pub use sim as arch;
pub use workloads as bench_workloads;
