//! End-to-end accelerator integration: the §V-A software interface over
//! real workloads, unit scaling, and ablation sanity.

use cereal_repro::accel::{
    initialize, read_object, write_object, Accelerator, CerealConfig, ObjectInputStream,
    ObjectOutputStream,
};
use cereal_repro::bench_workloads::{MicroBench, Scale, SparkApp, SparkScale};
use cereal_repro::heap::{isomorphic, Addr, Heap};

#[test]
fn write_read_object_over_a_whole_spark_dataset() {
    let mut ds = SparkApp::Bayes.build(SparkScale::Tiny);
    let mut accel = initialize(CerealConfig::paper());
    accel.register_all(&ds.reg).expect("register");

    let mut oos = ObjectOutputStream::new();
    let batches = ds.batches.clone();
    for &batch in &batches {
        write_object(&mut accel, &mut oos, &mut ds.heap, &ds.reg, batch).expect("write");
    }
    let wire = oos.into_bytes();

    let mut ois = ObjectInputStream::new(&wire);
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), ds.heap.capacity_bytes());
    for &batch in &batches {
        let root = read_object(&mut accel, &mut ois, &mut dst).expect("read");
        assert!(isomorphic(&ds.heap, &ds.reg, batch, &dst, root));
    }
    assert!(ois.is_exhausted());

    let report = accel.report();
    assert_eq!(report.ser_requests as usize, batches.len());
    assert_eq!(report.de_requests as usize, batches.len());
    assert!(report.bandwidth_util > 0.0 && report.bandwidth_util <= 1.0);
}

#[test]
fn more_units_never_hurt_throughput() {
    let (mut heap, reg, root) = MicroBench::ListSmall.build(Scale::Tiny);
    let mut prev = f64::INFINITY;
    for units in [1usize, 2, 4, 8] {
        let cfg = CerealConfig {
            num_su: units,
            num_du: units,
            ..CerealConfig::paper()
        };
        let mut accel = Accelerator::new(cfg);
        accel.register_all(&reg).expect("register");
        heap.gc_clear_serialization_metadata(&reg);
        for _ in 0..8 {
            accel.serialize(&mut heap, &reg, root).expect("serialize");
        }
        let t = accel.report().ser_makespan_ns;
        assert!(
            t <= prev * 1.05,
            "{units} units took {t} ns, worse than fewer units ({prev} ns)"
        );
        prev = t;
    }
}

#[test]
fn more_reconstructors_never_hurt_deserialization() {
    let (mut heap, reg, root) = MicroBench::TreeNarrow.build(Scale::Tiny);
    let bytes = {
        let mut accel = Accelerator::paper();
        accel.register_all(&reg).expect("register");
        accel.serialize(&mut heap, &reg, root).expect("serialize").bytes
    };
    let mut prev = f64::INFINITY;
    for recon in [1usize, 2, 4, 8] {
        let cfg = CerealConfig {
            reconstructors_per_du: recon,
            ..CerealConfig::paper()
        };
        let mut accel = Accelerator::new(cfg);
        accel.register_all(&reg).expect("register");
        let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
        let de = accel.deserialize(&bytes, &mut dst).expect("deserialize");
        assert!(
            de.run.busy_ns() <= prev * 1.05,
            "{recon} reconstructors took {} ns, worse than fewer ({prev} ns)",
            de.run.busy_ns()
        );
        prev = de.run.busy_ns();
    }
}

#[test]
fn vanilla_ablation_is_slower_but_correct() {
    let (mut heap, reg, root) = MicroBench::GraphSparse.build(Scale::Tiny);
    let mut paper = Accelerator::paper();
    let mut vanilla = Accelerator::vanilla();
    paper.register_all(&reg).expect("register");
    vanilla.register_all(&reg).expect("register");

    heap.gc_clear_serialization_metadata(&reg);
    let a = paper.serialize(&mut heap, &reg, root).expect("serialize");
    heap.gc_clear_serialization_metadata(&reg);
    let b = vanilla.serialize(&mut heap, &reg, root).expect("serialize");
    assert_eq!(a.bytes, b.bytes, "ablation changes timing, not the format");
    assert!(b.run.busy_ns() > a.run.busy_ns());

    let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
    let de = vanilla.deserialize(&b.bytes, &mut dst).expect("deserialize");
    assert!(isomorphic(&heap, &reg, root, &dst, de.root));
}

#[test]
fn header_strip_config_roundtrips_modulo_hash() {
    let cfg = CerealConfig {
        strip_mark_words: true,
        ..CerealConfig::paper()
    };
    let (mut heap, reg, root) = MicroBench::ListSmall.build(Scale::Tiny);
    let mut accel = Accelerator::new(cfg);
    accel.register_all(&reg).expect("register");
    let ser = accel.serialize(&mut heap, &reg, root).expect("serialize");

    let mut full = Accelerator::paper();
    full.register_all(&reg).expect("register");
    heap.gc_clear_serialization_metadata(&reg);
    let full_ser = full.serialize(&mut heap, &reg, root).expect("serialize");
    assert!(
        ser.bytes.len() < full_ser.bytes.len(),
        "stripping must shrink the stream: {} vs {}",
        ser.bytes.len(),
        full_ser.bytes.len()
    );

    let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
    let de = accel.deserialize(&ser.bytes, &mut dst).expect("deserialize");
    assert!(cereal_repro::heap::isomorphic_with(
        &heap,
        &reg,
        root,
        &dst,
        de.root,
        cereal_repro::heap::IsoOptions {
            check_identity_hash: false
        }
    ));
}

#[test]
fn class_table_capacity_is_a_hard_hardware_limit() {
    let mut reg = cereal_repro::heap::KlassRegistry::new();
    for i in 0..5000 {
        reg.register(cereal_repro::heap::Klass::new(format!("C{i}"), vec![]));
    }
    let mut accel = Accelerator::paper();
    let err = accel.register_all(&reg).unwrap_err();
    assert!(err.to_string().contains("unsupported"), "{err}");
    assert_eq!(accel.registered_classes(), 4096);
}
