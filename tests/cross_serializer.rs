//! Cross-crate integration: every serializer — the three software
//! baselines and the Cereal accelerator — must reconstruct isomorphic
//! graphs for every workload family in the repository.

use cereal_repro::accel::CerealSerializer;
use cereal_repro::baselines::{
    Archive, JavaSd, JsonLike, Kryo, NullSink, ProtoLike, Serializer, Skyway,
};
use cereal_repro::bench_workloads::{media_content, MicroBench, Scale, SparkApp, SparkScale};
use cereal_repro::heap::{isomorphic_with, Addr, Heap, IsoOptions, KlassRegistry};

fn all_serializers() -> Vec<Box<dyn Serializer>> {
    vec![
        Box::new(JavaSd::new()),
        Box::new(Kryo::new()),
        Box::new(Skyway::new()),
        Box::new(ProtoLike::new()),
        Box::new(Archive::new()),
        Box::new(CerealSerializer::new()),
    ]
}

/// Serializers that additionally support text round trips without cycles
/// through arrays (real JSON libraries reject those too).
fn acyclic_extra_serializers() -> Vec<Box<dyn Serializer>> {
    vec![Box::new(JsonLike::new())]
}

fn assert_roundtrip(ser: &dyn Serializer, heap: &mut Heap, reg: &KlassRegistry, root: Addr, what: &str) {
    // Reset any stale Cereal visited marks from earlier serializers.
    heap.gc_clear_serialization_metadata(reg);
    let bytes = ser
        .serialize(heap, reg, root, &mut NullSink)
        .unwrap_or_else(|e| panic!("{what}/{}: serialize failed: {e}", ser.name()));
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
    let new_root = ser
        .deserialize(&bytes, reg, &mut dst, &mut NullSink)
        .unwrap_or_else(|e| panic!("{what}/{}: deserialize failed: {e}", ser.name()));
    assert!(
        isomorphic_with(
            heap,
            reg,
            root,
            &dst,
            new_root,
            IsoOptions {
                check_identity_hash: ser.preserves_identity_hash()
            }
        ),
        "{what}/{}: reconstructed graph is not isomorphic",
        ser.name()
    );
}

#[test]
fn every_serializer_roundtrips_every_microbenchmark() {
    for bench in MicroBench::all() {
        let (mut heap, reg, root) = bench.build(Scale::Tiny);
        for ser in all_serializers() {
            assert_roundtrip(ser.as_ref(), &mut heap, &reg, root, bench.name());
        }
    }
}

#[test]
fn every_serializer_roundtrips_the_jsbs_object() {
    let (mut heap, reg, root) = media_content();
    for ser in all_serializers().into_iter().chain(acyclic_extra_serializers()) {
        assert_roundtrip(ser.as_ref(), &mut heap, &reg, root, "media-content");
    }
}

#[test]
fn every_serializer_roundtrips_every_spark_batch() {
    for app in SparkApp::all() {
        let mut ds = app.build(SparkScale::Tiny);
        let root = ds.batches[0];
        for ser in all_serializers().into_iter().chain(acyclic_extra_serializers()) {
            assert_roundtrip(ser.as_ref(), &mut ds.heap, &ds.reg, root, app.name());
        }
    }
}

#[test]
fn stream_sizes_keep_their_characteristic_order() {
    // Kryo ≤ Java everywhere; Skyway and Cereal carry headers and sit
    // above Kryo on value-heavy workloads.
    for bench in [MicroBench::TreeNarrow, MicroBench::ListSmall] {
        let (mut heap, reg, root) = bench.build(Scale::Tiny);
        let sizes: Vec<(String, usize)> = all_serializers()
            .iter()
            .map(|s| {
                heap.gc_clear_serialization_metadata(&reg);
                let b = s.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
                (s.name().to_string(), b.len())
            })
            .collect();
        let get = |n: &str| sizes.iter().find(|(name, _)| name == n).expect("present").1;
        assert!(get("Kryo") < get("Java"), "{}: {sizes:?}", bench.name());
        assert!(get("Kryo") < get("Skyway"), "{}: {sizes:?}", bench.name());
        assert!(get("Kryo") < get("Archive"), "{}: {sizes:?}", bench.name());
        assert!(get("Kryo") < get("Cereal"), "{}: {sizes:?}", bench.name());
    }
}

#[test]
fn serializers_are_independent_of_each_other() {
    // Running one serializer must not corrupt the heap for the next —
    // including Cereal, which writes header extensions.
    let (mut heap, reg, root) = MicroBench::GraphSparse.build(Scale::Tiny);
    let cereal = CerealSerializer::new();
    let before = cereal.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    let _ = JavaSd::new().serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    let _ = Skyway::new().serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    let after = cereal.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    assert_eq!(before, after, "stream must be reproducible after other serializers ran");
}
