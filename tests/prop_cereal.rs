//! Seeded randomized integration tests for the Cereal accelerator:
//! random object graphs must round-trip exactly (identity hashes
//! included), and packing invariants must hold on the produced streams.
//!
//! Formerly proptest properties; now deterministic loops over the
//! in-repo PRNG so the suite runs offline.

use cereal_repro::accel::CerealSerializer;
use cereal_repro::baselines::{NullSink, Serializer};
use cereal_repro::heap::builder::Init;
use cereal_repro::heap::rng::Rng;
use cereal_repro::heap::{
    isomorphic, Addr, FieldKind, GraphBuilder, GraphStats, Heap, KlassRegistry, ValueType,
};

struct GraphRecipe {
    nodes: Vec<(u8, u64, [u8; 3])>,
}

fn random_recipe(rng: &mut Rng) -> GraphRecipe {
    let n = rng.gen_range_usize(1, 40);
    GraphRecipe {
        nodes: (0..n)
            .map(|_| {
                (
                    rng.next_u64() as u8,
                    rng.next_u64(),
                    [
                        rng.next_u64() as u8,
                        rng.next_u64() as u8,
                        rng.next_u64() as u8,
                    ],
                )
            })
            .collect(),
    }
}

fn build(recipe: &GraphRecipe) -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 22);
    let k0 = b.klass("A", vec![FieldKind::Value(ValueType::Long), FieldKind::Ref]);
    let k1 = b.klass(
        "B",
        vec![FieldKind::Ref, FieldKind::Ref, FieldKind::Value(ValueType::Int)],
    );
    let k2 = b.klass("C", vec![FieldKind::Value(ValueType::Double)]);
    let k3 = b.array_klass("Object[]", FieldKind::Ref);

    let mut addrs = Vec::with_capacity(recipe.nodes.len());
    for &(pick, value, edges) in &recipe.nodes {
        let addr = match pick % 4 {
            0 => b.object(k0, &[Init::Val(value), Init::Null]).unwrap(),
            1 => b
                .object(k1, &[Init::Null, Init::Null, Init::Val(value & 0xffff_ffff)])
                .unwrap(),
            2 => b.object(k2, &[Init::Val(value)]).unwrap(),
            _ => b.ref_array(k3, &vec![Addr::NULL; (edges[0] % 4) as usize]).unwrap(),
        };
        addrs.push(addr);
    }
    let n = addrs.len();
    for (i, &(pick, _, edges)) in recipe.nodes.iter().enumerate() {
        let target = |e: u8| if e == 0 { Addr::NULL } else { addrs[(e as usize) % n] };
        match pick % 4 {
            0 => b.link(addrs[i], 1, target(edges[0])),
            1 => {
                b.link(addrs[i], 0, target(edges[0]));
                b.link(addrs[i], 1, target(edges[1]));
            }
            2 => {}
            _ => {
                for (slot, &e) in edges.iter().take((edges[0] % 4) as usize).enumerate() {
                    b.set_array_ref(addrs[i], slot, target(e));
                }
            }
        }
    }
    let root = addrs[0];
    let (heap, reg) = b.finish();
    (heap, reg, root)
}

const CASES: usize = 48;

/// The accelerator round-trips arbitrary graphs with *strict*
/// isomorphism — identity hashes survive header copies.
#[test]
fn cereal_roundtrips_random_graphs() {
    let mut rng = Rng::new(0xCE_0001);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let ser = CerealSerializer::new();
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
        let mut dst = Heap::with_base(Addr(0x40_0000_0000), heap.capacity_bytes());
        let new_root = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink).expect("ok");
        assert!(isomorphic(&heap, &reg, root, &dst, new_root), "case {i}");
    }
}

/// Serializing twice (new serialization counters) yields the exact same
/// stream — the visited-counter scheme leaves no residue.
#[test]
fn cereal_is_deterministic_across_counters() {
    let mut rng = Rng::new(0xCE_0002);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let ser = CerealSerializer::new();
        let a = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
        let b = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
        assert_eq!(a, b, "case {i}");
    }
}

/// Stream accounting invariants: image size = total reachable object
/// bytes; one bitmap per object; one packed reference per reachable
/// reference slot.
#[test]
fn stream_accounting_matches_graph_stats() {
    let mut rng = Rng::new(0xCE_0003);
    for i in 0..CASES {
        let (mut heap, reg, root) = build(&random_recipe(&mut rng));
        let ser = CerealSerializer::new();
        let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
        let stream = sdformat::CerealStream::from_bytes(&bytes).expect("decodable");
        let stats = GraphStats::measure(&heap, &reg, root);
        assert_eq!(u64::from(stream.total_object_bytes), stats.total_bytes, "case {i}");
        assert_eq!(stream.object_count as usize, stats.objects);
        assert_eq!(stream.bitmaps.count, stats.objects);
        assert_eq!(stream.refs.count, stats.ref_slots);
        // Value array covers every non-reference word except the
        // runtime-private extension word (one per object, regenerated).
        assert_eq!(stream.value_array.len(), (stats.value_words - stats.objects) * 8);
    }
}
