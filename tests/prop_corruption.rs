//! Failure injection: flipping bytes in valid streams must never panic
//! any deserializer — corrupt input yields `Err` (or, where the
//! corruption lands in payload bytes, a well-formed but different
//! graph), never a crash.

use cereal_repro::accel::CerealSerializer;
use cereal_repro::baselines::{JavaSd, JsonLike, Kryo, NullSink, ProtoLike, Serializer, Skyway};
use cereal_repro::heap::builder::Init;
use cereal_repro::heap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};
use proptest::prelude::*;

fn sample_graph() -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 18);
    let k = b.klass(
        "N",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
    );
    let arr = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let data = b.value_array(arr, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
    let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
    let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Ref(data)]).unwrap();
    let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, a)
}

fn corrupt_and_decode(ser: &dyn Serializer, flips: &[(u16, u8)]) {
    let (mut heap, reg, root) = sample_graph();
    let mut bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    for &(pos, mask) in flips {
        if bytes.is_empty() {
            break;
        }
        let i = pos as usize % bytes.len();
        bytes[i] ^= mask | 1; // always change something
    }
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), 1 << 20);
    // Must not panic. Err is fine; Ok means the corruption landed in
    // payload bytes and still decoded to *some* graph.
    let _ = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn javasd_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&JavaSd::new(), &flips);
    }

    #[test]
    fn kryo_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&Kryo::new(), &flips);
    }

    #[test]
    fn skyway_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&Skyway::new(), &flips);
    }

    #[test]
    fn cereal_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&CerealSerializer::new(), &flips);
    }

    #[test]
    fn jsonlike_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&JsonLike::new(), &flips);
    }

    #[test]
    fn protolike_survives_corruption(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        corrupt_and_decode(&ProtoLike::new(), &flips);
    }

    /// Truncation at any point must be rejected or decode cleanly.
    #[test]
    fn all_survive_truncation(cut in any::<u16>()) {
        for ser in [
            &JavaSd::new() as &dyn Serializer,
            &Kryo::new(),
            &Skyway::new(),
            &JsonLike::new(),
            &ProtoLike::new(),
            &CerealSerializer::new(),
        ] {
            let (mut heap, reg, root) = sample_graph();
            let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
            let cut = (cut as usize) % bytes.len();
            let mut dst = Heap::with_base(Addr(0x40_0000_0000), 1 << 20);
            let _ = ser.deserialize(&bytes[..cut], &reg, &mut dst, &mut NullSink);
        }
    }
}
