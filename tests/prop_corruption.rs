//! Failure injection: flipping bytes in valid streams must never panic
//! any deserializer — corrupt input yields `Err` (or, where the
//! corruption lands in payload bytes, a well-formed but different
//! graph), never a crash.
//!
//! Formerly proptest properties; now deterministic seeded loops so the
//! suite runs offline.

use cereal_repro::accel::CerealSerializer;
use cereal_repro::baselines::{JavaSd, JsonLike, Kryo, NullSink, ProtoLike, Serializer, Skyway};
use cereal_repro::heap::builder::Init;
use cereal_repro::heap::rng::Rng;
use cereal_repro::heap::{Addr, FieldKind, GraphBuilder, Heap, KlassRegistry, ValueType};

fn sample_graph() -> (Heap, KlassRegistry, Addr) {
    let mut b = GraphBuilder::new(1 << 18);
    let k = b.klass(
        "N",
        vec![FieldKind::Value(ValueType::Long), FieldKind::Ref, FieldKind::Ref],
    );
    let arr = b.array_klass("double[]", FieldKind::Value(ValueType::Double));
    let data = b.value_array(arr, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
    let c = b.object(k, &[Init::Val(3), Init::Null, Init::Null]).unwrap();
    let x = b.object(k, &[Init::Val(2), Init::Ref(c), Init::Ref(data)]).unwrap();
    let a = b.object(k, &[Init::Val(1), Init::Ref(x), Init::Ref(c)]).unwrap();
    let (heap, reg) = b.finish();
    (heap, reg, a)
}

fn corrupt_and_decode(ser: &dyn Serializer, flips: &[(u16, u8)]) {
    let (mut heap, reg, root) = sample_graph();
    let mut bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
    for &(pos, mask) in flips {
        if bytes.is_empty() {
            break;
        }
        let i = pos as usize % bytes.len();
        bytes[i] ^= mask | 1; // always change something
    }
    let mut dst = Heap::with_base(Addr(0x40_0000_0000), 1 << 20);
    // Must not panic. Err is fine; Ok means the corruption landed in
    // payload bytes and still decoded to *some* graph.
    let _ = ser.deserialize(&bytes, &reg, &mut dst, &mut NullSink);
}

const CASES: usize = 256;

fn corruption_cases(seed: u64, ser: &dyn Serializer) {
    let mut rng = Rng::new(seed);
    for _ in 0..CASES {
        let flips: Vec<(u16, u8)> = (0..rng.gen_range_usize(1, 8))
            .map(|_| (rng.next_u64() as u16, rng.next_u64() as u8))
            .collect();
        corrupt_and_decode(ser, &flips);
    }
}

#[test]
fn javasd_survives_corruption() {
    corruption_cases(0xC0_0001, &JavaSd::new());
}

#[test]
fn kryo_survives_corruption() {
    corruption_cases(0xC0_0002, &Kryo::new());
}

#[test]
fn skyway_survives_corruption() {
    corruption_cases(0xC0_0003, &Skyway::new());
}

#[test]
fn cereal_survives_corruption() {
    corruption_cases(0xC0_0004, &CerealSerializer::new());
}

#[test]
fn jsonlike_survives_corruption() {
    corruption_cases(0xC0_0005, &JsonLike::new());
}

#[test]
fn protolike_survives_corruption() {
    corruption_cases(0xC0_0006, &ProtoLike::new());
}

/// Truncation at any point must be rejected or decode cleanly.
#[test]
fn all_survive_truncation() {
    let mut rng = Rng::new(0xC0_0007);
    for _ in 0..CASES {
        let cut_seed = rng.next_u64() as u16;
        for ser in [
            &JavaSd::new() as &dyn Serializer,
            &Kryo::new(),
            &Skyway::new(),
            &JsonLike::new(),
            &ProtoLike::new(),
            &CerealSerializer::new(),
        ] {
            let (mut heap, reg, root) = sample_graph();
            let bytes = ser.serialize(&mut heap, &reg, root, &mut NullSink).expect("ok");
            let cut = (cut_seed as usize) % bytes.len();
            let mut dst = Heap::with_base(Addr(0x40_0000_0000), 1 << 20);
            let _ = ser.deserialize(&bytes[..cut], &reg, &mut dst, &mut NullSink);
        }
    }
}
